/**
 * @file
 * Sweep-fabric wire protocol (DESIGN.md §15): the line-delimited
 * JSON messages a coordinator and its worker processes exchange
 * over per-worker Unix socketpairs, reusing the serve JSON codec
 * (src/serve/json.hh) so all three consumers of the dotted config
 * keys — tempest_run, tempest_serve, and the fabric — translate
 * configurations identically.
 *
 * Coordinator -> worker:
 *
 *   {"op":"job","kind":"run","index":7,"tag":"iq_toggling",
 *    "benchmark":"mesa","cycles":2000000,"seed":"0x...",
 *    "config":{"floorplan.variant":"iq","dtm.toggling":"true"},
 *    "snapshot":"/spill/warm_mesa.ckpt","reset_measurement":true}
 *   {"op":"job","kind":"warm", ... ,"snapshot":"<output path>"}
 *   {"op":"shutdown"}
 *
 * Worker -> coordinator:
 *
 *   {"op":"hello","pid":12345}
 *   {"op":"result","index":7,"ok":true,"result_hash":"0x...",
 *    "wall_seconds":0.41,"blob":"<hex SimResult>"}
 *   {"op":"result","index":7,"ok":false,"error":"..."}
 *
 * A "run" job executes one shard: cold from cycle 0 when
 * "snapshot" is absent, or forked from the named warm snapshot
 * file (the coordinator ships warm state by path, never by value —
 * the snapshot is written once per benchmark via the versioned
 * checkpoint format and every fork re-reads it). A "warm" job
 * builds that snapshot: warm up under the neutral config and
 * write the checkpoint to "snapshot" atomically.
 *
 * SimResults travel as a hex-encoded binary blob in the StateIO
 * little-endian encoding (doubles as IEEE bit patterns), NOT as
 * JSON numbers: the fabric's contract is bit-identity with the
 * in-process runner, and a double that round-trips through
 * decimal text cannot guarantee that. "result_hash" carries
 * hashSimResult() computed by the worker; the coordinator
 * recomputes it from the decoded blob and treats a mismatch as
 * transport corruption.
 */

#ifndef TEMPEST_SIM_FABRIC_FABRIC_PROTOCOL_HH
#define TEMPEST_SIM_FABRIC_FABRIC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "common/config.hh"
#include "serve/json.hh"
#include "sim/simulator.hh"

namespace tempest
{
namespace fabric
{

/** One shard of the job graph, as shipped to a worker. */
struct FabricJob
{
    enum class Kind
    {
        Run, ///< simulate one (config, benchmark) shard
        Warm ///< build one benchmark's warm snapshot file
    };

    Kind kind = Kind::Run;
    /** Job-graph index: the deterministic merge key. */
    std::size_t index = 0;
    /** Config identity within the sweep (seed derivation). */
    std::string tag;
    std::string benchmark;
    /** Measured cycles (Run) or warm-up cycles (Warm). */
    std::uint64_t cycles = 0;
    /** Exact runSeed (already derived by the coordinator). */
    std::uint64_t seed = 0;
    /** Dotted config keys (sim_config_io vocabulary). */
    Config config;
    /** Run: fork source when non-empty. Warm: output path. */
    std::string snapshotPath;
    /** Run-from-snapshot only: zero measurement after restore. */
    bool resetMeasurement = true;
};

/** One worker reply. */
struct FabricResult
{
    std::size_t index = 0;
    bool ok = false;
    std::string error;
    /** hashSimResult (Run) or FNV-1a of the snapshot bytes
     * (Warm), as reported by the worker. */
    std::uint64_t resultHash = 0;
    /** Simulation wall seconds on the worker (metadata only). */
    double wallSeconds = 0;
    /** Decoded result; valid only for ok Run replies. */
    SimResult result;
    bool hasResult = false;
};

// ---- message codecs (one JSON document per line, no newline) ----

std::string encodeJob(const FabricJob& job);
/** Parse a job message; fatal() on malformed input. */
FabricJob parseJob(const serve::Json& doc);

std::string encodeResult(const FabricResult& result);
/** Parse a result message; fatal() on malformed input. */
FabricResult parseResult(const serve::Json& doc);

std::string encodeHello(long pid);
std::string encodeShutdown();

// ---- SimResult binary blob (StateIO encoding) ----

/** Serialize every SimResult field bit-exactly. */
std::string encodeSimResultBlob(const SimResult& result);
/** Inverse of encodeSimResultBlob; fatal() on truncation. */
SimResult decodeSimResultBlob(std::string_view bytes);

// ---- helpers ----

/** Lowercase hex, two digits per byte. */
std::string hexEncode(std::string_view bytes);
/** Inverse of hexEncode; fatal() on odd length or non-hex. */
std::string hexDecode(std::string_view hex);

/** Parse "0x..."/plain hex into a u64; fatal() on garbage. */
std::uint64_t parseHexU64(const std::string& text);

} // namespace fabric
} // namespace tempest

#endif // TEMPEST_SIM_FABRIC_FABRIC_PROTOCOL_HH
