/**
 * @file
 * Sweep-fabric coordinator (DESIGN.md §15).
 *
 * The coordinator owns the job graph, in the spirit of YTsaurus's
 * controller-agent/scheduler split: it shards a (benchmark x
 * config) matrix into jobs keyed by the deterministic
 * deriveRunSeed identity, schedules them over a pool of worker
 * processes connected by per-worker Unix socketpairs, ships warm
 * state by file path (the snapshot is written once per benchmark
 * through the versioned checkpoint format), detects worker death
 * (EOF/POLLHUP + waitpid) or job timeout and re-queues the dead
 * worker's shard onto survivors, and merges results
 * deterministically by job index — never by arrival order — so
 * the outcome set is bit-identical to the in-process runner at
 * any worker count and across any failure/recovery history.
 *
 * Failure model:
 *  - A job that *fails* (simulation throws on a worker) is a
 *    completed outcome with ok=false, exactly like
 *    ExperimentRunner::runJob; it is never retried.
 *  - A worker that *dies* mid-job (crash, SIGKILL, timeout) gets
 *    its shard re-queued at the front of the queue, up to
 *    maxJobAttempts dispatches; past that the job is recorded as
 *    failed (a poison shard must not crash the pool forever).
 *  - When every worker is dead and shards remain, the coordinator
 *    respawns workers from a bounded budget before giving up.
 *
 * Concurrency audit: the coordinator itself is single-threaded —
 * isolation is process-level (state crosses only the socketpair
 * wire, in the fabric_protocol format checked by the
 * protocol-schema lint pass), so unlike the serve daemon there
 * are no locks to annotate here.
 */

#ifndef TEMPEST_SIM_FABRIC_COORDINATOR_HH
#define TEMPEST_SIM_FABRIC_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "sim/fabric/fabric_protocol.hh"
#include "sim/runner.hh"

namespace tempest
{
namespace fabric
{

/** Pool shape and recovery policy. */
struct FabricOptions
{
    /** Worker process count (clamped to [1, jobs]). */
    int workers = 1;
    /** Experiment-level seed the per-job seeds derive from. */
    std::uint64_t baseSeed = 1;
    /** Directory warm snapshots are written to (file-path warm
     * shipping). Required by runWarmForkSweep. */
    std::string spillDir;
    /** argv to exec for each worker; "--worker-fd <n>" is
     * appended. Empty: fork-mode — the child calls workerMain()
     * directly (no exec), which is what tests and benches use. */
    std::vector<std::string> workerCommand;
    /** SIGKILL + re-queue a job running longer than this (hung
     * worker recovery). 0 disables the deadline. */
    double jobTimeoutSeconds = 0;
    /** Dispatch attempts per job before it is recorded as failed
     * (worker-death retries; simulation errors never retry). */
    int maxJobAttempts = 3;
    /** Workers respawned after total pool loss before the
     * remaining shards are failed; <0 picks 2*workers+2. */
    int respawnBudget = -1;
    /** Observability hook: spawn/death/re-queue/timeout events as
     * human-readable lines (never part of any result). */
    std::function<void(const std::string&)> onEvent;
};

/** A (benchmark x config) sweep over dotted config keys — the
 * same vocabulary tempest_run configs and tempest_serve requests
 * use (sim_config_io). */
struct SweepSpec
{
    /** (tag, dotted-key config) pairs; tag feeds seed identity. */
    std::vector<std::pair<std::string, Config>> configs;
    std::vector<std::string> benchmarks;
    std::uint64_t measureCycles = 0;
};

/** Warm-fork parameters (mirrors experiments::WarmForkOptions). */
struct WarmSpec
{
    /** Shared neutral warm-up config (techniques off). */
    Config warmConfig;
    std::uint64_t warmupCycles = 0;
    std::string warmTag = "warmup";
    bool resetMeasurement = true;
};

class FabricCoordinator
{
  public:
    explicit FabricCoordinator(FabricOptions options)
        : options_(std::move(options))
    {}

    /**
     * Cold sweep of the (configs x benchmarks) matrix across the
     * worker pool. Outcome order matches experiments::runSweep
     * (configs-major), and each outcome is bit-identical to the
     * in-process runner's for the same (baseSeed, tag, benchmark).
     */
    std::vector<ExperimentOutcome> runSweep(const SweepSpec& spec);

    /**
     * Warm-fork sweep: phase 1 builds one warm snapshot per
     * benchmark (parallel across workers, written to spillDir via
     * the versioned checkpoint format), phase 2 forks every
     * (config, benchmark) job from its benchmark's snapshot file.
     * Outcome order and bit pattern match
     * experiments::runWarmForkSweep with the same spillDir
     * discipline. fatal() if spillDir is empty.
     */
    std::vector<ExperimentOutcome> runWarmForkSweep(
        const SweepSpec& spec, const WarmSpec& warm);

    /**
     * Scheduling engine: run a dense job list (job.index == its
     * position) across the pool and return results indexed by
     * job.index. Public so tests can drive failure injection
     * without sweep scaffolding.
     */
    std::vector<FabricResult> runJobs(
        const std::vector<FabricJob>& jobs);

    const FabricOptions& options() const { return options_; }

  private:
    void event(const std::string& message) const;

    FabricOptions options_;
};

} // namespace fabric
} // namespace tempest

#endif // TEMPEST_SIM_FABRIC_COORDINATOR_HH
