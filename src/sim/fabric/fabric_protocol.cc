#include "sim/fabric/fabric_protocol.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"
#include "serve/protocol.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{
namespace fabric
{

namespace
{

const char*
kindName(FabricJob::Kind kind)
{
    return kind == FabricJob::Kind::Run ? "run" : "warm";
}

FabricJob::Kind
parseKind(const std::string& name)
{
    if (name == "run")
        return FabricJob::Kind::Run;
    if (name == "warm")
        return FabricJob::Kind::Warm;
    fatal("unknown fabric job kind '", name, "' (run|warm)");
}

/** Required object member; fatal() with the field name. */
const serve::Json&
field(const serve::Json& doc, const char* key)
{
    const serve::Json* value = doc.find(key);
    if (!value)
        fatal("fabric message has no \"", key, "\" field");
    return *value;
}

} // namespace

std::string
hexEncode(std::string_view bytes)
{
    static const char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out.push_back(kDigits[b >> 4]);
        out.push_back(kDigits[b & 0xf]);
    }
    return out;
}

std::string
hexDecode(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        fatal("hex blob has odd length ", hex.size());
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fatal("invalid hex digit '", std::string(1, c), "'");
    };
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                        nibble(hex[i + 1])));
    }
    return out;
}

std::uint64_t
parseHexU64(const std::string& text)
{
    const char* start = text.c_str();
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(start, &end, 16);
    if (end == start || *end != '\0' || errno == ERANGE)
        fatal("'", text, "' is not a hex u64");
    return v;
}

// The "op" routing key is read by the worker dispatch loop before
// parseJob ever sees the message, so the decoder never reads it.
// proto:skip(op: routing key consumed by the dispatch loop)
std::string
encodeJob(const FabricJob& job)
{
    serve::Json msg;
    msg["op"] = serve::Json("job");
    msg["kind"] = serve::Json(kindName(job.kind));
    msg["index"] =
        serve::Json(static_cast<std::uint64_t>(job.index));
    msg["tag"] = serve::Json(job.tag);
    msg["benchmark"] = serve::Json(job.benchmark);
    msg["cycles"] = serve::Json(job.cycles);
    msg["seed"] = serve::Json(serve::hexU64(job.seed));
    // An explicit empty object, never null: an empty Config is a
    // valid job config (every key at its default).
    serve::Json config{serve::Json::Object{}};
    // Config entries are already strings; shipping them verbatim
    // (and re-set()ing on the worker) is an exact round trip.
    for (const auto& [key, value] : job.config.entries())
        config[key] = serve::Json(value);
    msg["config"] = config;
    if (!job.snapshotPath.empty())
        msg["snapshot"] = serve::Json(job.snapshotPath);
    msg["reset_measurement"] = serve::Json(job.resetMeasurement);
    return msg.dump();
}

FabricJob
parseJob(const serve::Json& doc)
{
    FabricJob job;
    job.kind = parseKind(field(doc, "kind").asString());
    job.index = static_cast<std::size_t>(
        field(doc, "index").asUnsigned());
    job.tag = field(doc, "tag").asString();
    job.benchmark = field(doc, "benchmark").asString();
    job.cycles = field(doc, "cycles").asUnsigned();
    job.seed = parseHexU64(field(doc, "seed").asString());
    for (const auto& [key, value] :
         field(doc, "config").asObject())
        job.config.set(key, value.asString());
    if (const serve::Json* snapshot = doc.find("snapshot"))
        job.snapshotPath = snapshot->asString();
    job.resetMeasurement =
        field(doc, "reset_measurement").asBool();
    if (job.kind == FabricJob::Kind::Warm &&
        job.snapshotPath.empty())
        fatal("fabric warm job needs a snapshot output path");
    return job;
}

// Same asymmetry as encodeJob: the coordinator routes on "op"
// before handing the document to parseResult.
// proto:skip(op: routing key consumed by the dispatch loop)
std::string
encodeResult(const FabricResult& result)
{
    serve::Json msg;
    msg["op"] = serve::Json("result");
    msg["index"] =
        serve::Json(static_cast<std::uint64_t>(result.index));
    msg["ok"] = serve::Json(result.ok);
    if (!result.ok) {
        msg["error"] = serve::Json(result.error);
        return msg.dump();
    }
    msg["result_hash"] =
        serve::Json(serve::hexU64(result.resultHash));
    msg["wall_seconds"] = serve::Json(result.wallSeconds);
    if (result.hasResult) {
        msg["blob"] = serve::Json(
            hexEncode(encodeSimResultBlob(result.result)));
    }
    return msg.dump();
}

FabricResult
parseResult(const serve::Json& doc)
{
    FabricResult result;
    result.index = static_cast<std::size_t>(
        field(doc, "index").asUnsigned());
    result.ok = field(doc, "ok").asBool();
    if (!result.ok) {
        result.error = field(doc, "error").asString();
        return result;
    }
    result.resultHash =
        parseHexU64(field(doc, "result_hash").asString());
    result.wallSeconds = field(doc, "wall_seconds").asDouble();
    if (const serve::Json* blob = doc.find("blob")) {
        result.result =
            decodeSimResultBlob(hexDecode(blob->asString()));
        result.hasResult = true;
    }
    return result;
}

std::string
encodeHello(long pid)
{
    serve::Json msg;
    msg["op"] = serve::Json("hello");
    msg["pid"] = serve::Json(static_cast<std::int64_t>(pid));
    return msg.dump();
}

std::string
encodeShutdown()
{
    serve::Json msg;
    msg["op"] = serve::Json("shutdown");
    return msg.dump();
}

std::string
encodeSimResultBlob(const SimResult& result)
{
    StateWriter w;
    w.str(result.benchmark);
    w.f64(result.ipc);
    w.u64(result.cycles);
    w.u64(result.instructions);
    w.u64(result.stallCycles);
    // DtmStats and ActivityRecord are flat all-u64 PODs; the bulk
    // write captures every counter bit-exactly and the matching
    // length check on the reader side turns a layout drift between
    // coordinator and worker builds into a clear error.
    w.blob(&result.dtm, sizeof(result.dtm));
    w.blob(&result.activity, sizeof(result.activity));
    w.u32(static_cast<std::uint32_t>(result.blocks.size()));
    for (const BlockTempStats& b : result.blocks) {
        w.str(b.name);
        w.f64(b.avg);
        w.f64(b.max);
    }
    return w.bytes();
}

SimResult
decodeSimResultBlob(std::string_view bytes)
{
    StateReader r(bytes);
    SimResult result;
    result.benchmark = r.str();
    result.ipc = r.f64();
    result.cycles = r.u64();
    result.instructions = r.u64();
    result.stallCycles = r.u64();
    r.blob(&result.dtm, sizeof(result.dtm));
    r.blob(&result.activity, sizeof(result.activity));
    const std::uint32_t num_blocks = r.u32();
    result.blocks.resize(num_blocks);
    for (BlockTempStats& b : result.blocks) {
        b.name = r.str();
        b.avg = r.f64();
        b.max = r.f64();
    }
    if (!r.atEnd())
        fatal("fabric result blob has ", r.remaining(),
              " trailing bytes");
    return result;
}

} // namespace fabric
} // namespace tempest
