#include "dtm/dtm_policy.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

ResourceBalancingDtm::ResourceBalancingDtm(const DtmConfig& config,
                                           OooCore& core,
                                           const Floorplan& floorplan)
    : config_(config),
      core_(core),
      numIntAlus_(core.config().numIntAlus),
      numFpAdders_(core.config().numFpAdders),
      numRegCopies_(core.config().numIntRegfileCopies)
{
    intQHalf_[0] = floorplan.indexOf("IntQ0");
    intQHalf_[1] = floorplan.indexOf("IntQ1");
    fpQHalf_[0] = floorplan.indexOf("FPQ0");
    fpQHalf_[1] = floorplan.indexOf("FPQ1");
    for (int i = 0; i < numIntAlus_; ++i)
        intExec_[i] = floorplan.indexOf("IntExec" +
                                        std::to_string(i));
    for (int i = 0; i < numFpAdders_; ++i)
        fpAdd_[i] = floorplan.indexOf("FPAdd" + std::to_string(i));
    for (int c = 0; c < numRegCopies_; ++c)
        intReg_[c] = floorplan.indexOf("IntReg" +
                                       std::to_string(c));

    // Everything else is monitored for the temporal fallback only.
    for (int b = 0; b < floorplan.numBlocks(); ++b) {
        const std::string& name = floorplan.block(b).name;
        if (name.rfind("IntQ", 0) == 0 ||
            name.rfind("FPQ", 0) == 0 ||
            name.rfind("IntExec", 0) == 0 ||
            name.rfind("FPAdd", 0) == 0 ||
            name.rfind("IntReg", 0) == 0) {
            continue;
        }
        otherMonitored_.push_back(b);
    }

    core_.setRoundRobin(config_.roundRobin);
    core_.intRegfile().setMapping(config_.mapping);
}

bool
ResourceBalancingDtm::aluOffForRegfile(int alu) const
{
    if (config_.mapping == PortMapping::CompletelyBalanced) {
        for (int c = 0; c < numRegCopies_; ++c) {
            if (regCopyOff_[c])
                return true;
        }
        return false;
    }
    const int copy = core_.intRegfile().copyForAlu(alu);
    return regCopyOff_[copy];
}

void
ResourceBalancingDtm::sampleQueue(IssueQueue& iq,
                                  const std::vector<Kelvin>& t,
                                  const int half_blocks[2])
{
    // The activity-heavy half is the one holding the tail region:
    // physical half 1 in the conventional configuration, half 0
    // after a toggle (§2.1.1).
    const int tail_half =
        iq.mode() == CompactionMode::Conventional ? 1 : 0;
    const int head_half = 1 - tail_half;
    const Kelvin t_tail = t[static_cast<std::size_t>(
        half_blocks[tail_half])];
    const Kelvin t_head = t[static_cast<std::size_t>(
        half_blocks[head_half])];
    // Toggle before either half overheats (overheating is the
    // temporal fallback's business), and only once the hot half
    // approaches the threshold — far below it the toggled
    // configuration's long-wire cost buys nothing.
    if (t_tail - t_head > config_.toggleDeltaK &&
        t_tail >= config_.maxTemperature - config_.toggleProximityK &&
        t_tail < config_.maxTemperature &&
        t_head < config_.maxTemperature) {
        iq.toggleMode();
        ++stats_.iqToggles;
    }
}

DtmAction
ResourceBalancingDtm::sample(const std::vector<Kelvin>& temps)
{
    Kelvin hottest = 0;
    for (const Kelvin t : temps)
        hottest = std::max(hottest, t);
    return sample(temps, hottest);
}

DtmAction
ResourceBalancingDtm::sample(const std::vector<Kelvin>& temps,
                             Kelvin hottest)
{
    const Kelvin max_t = config_.maxTemperature;
    bool stall = false;

    // ---- activity toggling (§2.1) ----
    if (config_.iqToggling) {
        sampleQueue(core_.intQueue(), temps, intQHalf_);
        sampleQueue(core_.fpQueue(), temps, fpQHalf_);
    }

    // An overheated issue-queue half can never be turned off
    // (broadcast must reach all entries), so it always stalls.
    for (int h = 0; h < 2; ++h) {
        if (temps[static_cast<std::size_t>(intQHalf_[h])] >= max_t)
            stall = true;
        if (temps[static_cast<std::size_t>(fpQHalf_[h])] >= max_t)
            stall = true;
    }

    // ---- fine-grain ALU turnoff (§2.2) ----
    AluPool& alus = core_.alus();
    if (config_.aluTurnoff) {
        for (int i = 0; i < numIntAlus_; ++i) {
            const Kelvin t =
                temps[static_cast<std::size_t>(intExec_[i])];
            if (t >= max_t) {
                if (aluUnitOff_[i] == 0) {
                    alus.setIntAluOff(i, TurnoffReason::UnitThermal,
                                      true);
                    aluUnitOff_[i] = 1;
                    ++stats_.aluTurnoffEvents;
                }
            } else if (aluUnitOff_[i] != 0 &&
                       t <= max_t - config_.reenableHysteresisK) {
                alus.setIntAluOff(i, TurnoffReason::UnitThermal,
                                  false);
                aluUnitOff_[i] = 0;
            }
        }
        for (int i = 0; i < numFpAdders_; ++i) {
            const Kelvin t =
                temps[static_cast<std::size_t>(fpAdd_[i])];
            if (t >= max_t) {
                if (fpUnitOff_[i] == 0) {
                    alus.setFpAdderOff(
                        i, TurnoffReason::UnitThermal, true);
                    fpUnitOff_[i] = 1;
                    ++stats_.fpAdderTurnoffEvents;
                }
            } else if (fpUnitOff_[i] != 0 &&
                       t <= max_t - config_.reenableHysteresisK) {
                alus.setFpAdderOff(i, TurnoffReason::UnitThermal,
                                   false);
                fpUnitOff_[i] = 0;
            }
        }
        if (alus.allIntAlusOff())
            stall = true;
        if (alus.allFpAddersOff() && core_.fpQueue().count() > 0)
            stall = true;
    } else {
        for (int i = 0; i < numIntAlus_; ++i) {
            if (temps[static_cast<std::size_t>(intExec_[i])] >=
                max_t) {
                stall = true;
            }
        }
        for (int i = 0; i < numFpAdders_; ++i) {
            if (temps[static_cast<std::size_t>(fpAdd_[i])] >=
                max_t) {
                stall = true;
            }
        }
    }

    // ---- fine-grain register-file copy turnoff (§2.3) ----
    if (config_.regfileTurnoff) {
        const Kelvin off_t = max_t - config_.regfileTurnoffMarginK;
        for (int c = 0; c < numRegCopies_; ++c) {
            const Kelvin t =
                temps[static_cast<std::size_t>(intReg_[c])];
            if (!regCopyOff_[c] && t >= off_t) {
                regCopyOff_[c] = true;
                ++stats_.regfileTurnoffEvents;
                for (int alu :
                     core_.intRegfile().alusOfCopy(c)) {
                    alus.setIntAluOff(
                        alu, TurnoffReason::RegfileThermal, true);
                }
            } else if (regCopyOff_[c] &&
                       t <= off_t - config_.reenableHysteresisK) {
                regCopyOff_[c] = false;
                for (int alu :
                     core_.intRegfile().alusOfCopy(c)) {
                    alus.setIntAluOff(
                        alu, TurnoffReason::RegfileThermal, false);
                }
            }
            // Writes continue while cooling; only past the full
            // critical threshold does the fallback engage.
            if (t >= max_t)
                stall = true;
        }
        bool all_off = true;
        for (int c = 0; c < numRegCopies_; ++c)
            all_off = all_off && regCopyOff_[c];
        if (all_off)
            stall = true;
        if (alus.allIntAlusOff())
            stall = true;
    } else {
        for (int c = 0; c < numRegCopies_; ++c) {
            if (temps[static_cast<std::size_t>(intReg_[c])] >=
                max_t) {
                stall = true;
            }
        }
    }

    // ---- everything else: temporal technique only ----
    for (int b : otherMonitored_) {
        if (temps[static_cast<std::size_t>(b)] >= max_t)
            stall = true;
    }

    // ---- fetch throttling (related-work temporal comparator) ----
    if (config_.fetchThrottling) {
        const Kelvin on_t = max_t - config_.fetchThrottleMarginK;
        if (hottest >= on_t) {
            if (core_.fetchInterval() == 1)
                ++stats_.fetchThrottleEvents;
            core_.setFetchInterval(
                config_.fetchThrottleInterval);
        } else if (hottest <=
                   on_t - config_.reenableHysteresisK) {
            core_.setFetchInterval(1);
        }
    }

    if (stall)
        ++stats_.globalStalls;
    return stall ? DtmAction::GlobalStall : DtmAction::Continue;
}

void
ResourceBalancingDtm::saveState(StateWriter& w) const
{
    w.i32(numIntAlus_);
    w.i32(numFpAdders_);
    w.i32(numRegCopies_);
    for (const bool off : regCopyOff_)
        w.boolean(off);
    for (const std::uint8_t off : aluUnitOff_)
        w.u8(off);
    for (const std::uint8_t off : fpUnitOff_)
        w.u8(off);
    w.u64(stats_.iqToggles);
    w.u64(stats_.aluTurnoffEvents);
    w.u64(stats_.fpAdderTurnoffEvents);
    w.u64(stats_.regfileTurnoffEvents);
    w.u64(stats_.globalStalls);
    w.u64(stats_.fetchThrottleEvents);
}

void
ResourceBalancingDtm::loadState(StateReader& r)
{
    const int alus = r.i32();
    const int adders = r.i32();
    const int copies = r.i32();
    if (alus != numIntAlus_ || adders != numFpAdders_ ||
        copies != numRegCopies_) {
        fatal("checkpoint DTM mismatch: saved ", alus, "/", adders,
              "/", copies, " ALUs/adders/copies, this policy has ",
              numIntAlus_, "/", numFpAdders_, "/", numRegCopies_);
    }
    for (bool& off : regCopyOff_)
        off = r.boolean();
    for (std::uint8_t& off : aluUnitOff_)
        off = r.u8();
    for (std::uint8_t& off : fpUnitOff_)
        off = r.u8();
    stats_.iqToggles = r.u64();
    stats_.aluTurnoffEvents = r.u64();
    stats_.fpAdderTurnoffEvents = r.u64();
    stats_.regfileTurnoffEvents = r.u64();
    stats_.globalStalls = r.u64();
    stats_.fetchThrottleEvents = r.u64();
}

} // namespace tempest
