/**
 * @file
 * Dynamic thermal management — the paper's contribution.
 *
 * ResourceBalancingDtm implements the three balancing techniques
 * plus the temporal fallback, each independently selectable so the
 * experiments can compose exactly the configurations of §4:
 *
 * - Activity toggling (§2.1): flip an issue queue's head/tail
 *   configuration when the activity-heavy half runs more than
 *   toggleDeltaK hotter than the other half (0.5 K in the paper),
 *   before either half overheats.
 * - Fine-grain turnoff of ALUs (§2.2): mark an overheated ALU busy
 *   so its select tree grants nothing; re-enable with hysteresis.
 * - Fine-grain turnoff of register-file copies (§2.3): when a copy
 *   crosses its (slightly lowered) threshold, mark busy the ALUs
 *   mapped to it; writes continue during cooling (the paper's
 *   first stale-copy solution).
 * - Temporal fallback: if an issue-queue half overheats, or every
 *   copy of a turnoff-capable resource is off, or any other
 *   monitored block overheats, stall the processor for the thermal
 *   cooling time (Pentium-4-style stop-go).
 *
 * The baseline configuration disables all three balancing
 * techniques, leaving only the temporal fallback.
 */

#ifndef TEMPEST_DTM_DTM_POLICY_HH
#define TEMPEST_DTM_DTM_POLICY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "thermal/floorplan.hh"
#include "uarch/core.hh"
#include "uarch/regfile.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Which techniques are active and their thresholds. */
struct DtmConfig
{
    /** Critical thermal threshold (Table 2: 358 K). */
    Kelvin maxTemperature = 358.0;

    /** Enable issue-queue activity toggling. */
    bool iqToggling = false;
    /** Half-to-half difference that triggers a toggle (0.5 K). */
    Kelvin toggleDeltaK = 0.5;
    /**
     * Toggle only when the hot half is within this margin of the
     * critical threshold. The wrap-around compaction wires make
     * the toggled configuration cost energy (Table 3's long
     * compaction), so toggling far below the threshold wastes
     * power; near the threshold it converts the half-to-half
     * temperature gap into stall-free headroom. The default
     * (effectively infinite) reproduces the paper's policy of
     * toggling on the 0.5 K differential alone; the ablation
     * bench sweeps this gate.
     */
    Kelvin toggleProximityK = 1.0e9;

    /** Enable fine-grain ALU / FP-adder turnoff. */
    bool aluTurnoff = false;

    /** Enable fine-grain register-file copy turnoff. */
    bool regfileTurnoff = false;
    /**
     * Copies turn off slightly below the critical threshold so
     * continued writes cannot push them past it (§2.3).
     */
    Kelvin regfileTurnoffMarginK = 0.5;

    /** Ideal round-robin select (upper bound comparator, §4.2). */
    bool roundRobin = false;

    /** Register-port mapping (§2.3 / Figure 4). */
    PortMapping mapping = PortMapping::Priority;

    /** Turned-off units re-enable this far below their turnoff
     * point, avoiding on/off oscillation at the threshold. */
    Kelvin reenableHysteresisK = 1.5;

    /** Stall duration after an unmanageable overheat (Table 2:
     * 10 ms; scaled by the thermal time scale by the simulator). */
    Seconds coolingTime = 10e-3;

    /**
     * Fetch throttling (related-work comparator in the spirit of
     * Skadron et al.'s fetch gating [15]): when any monitored
     * block comes within fetchThrottleMarginK of the threshold,
     * fetch is slowed to one cycle in fetchThrottleInterval; full
     * speed resumes below the margin minus the hysteresis. The
     * hard threshold still engages the stop-go fallback.
     */
    bool fetchThrottling = false;
    Kelvin fetchThrottleMarginK = 1.0;
    int fetchThrottleInterval = 4;
};

/** What the simulator must do after a sensor sample. */
enum class DtmAction
{
    Continue,   ///< keep executing
    GlobalStall ///< stop-go: stall for the cooling time
};

/** Lifetime statistics of one DTM instance. */
struct DtmStats
{
    std::uint64_t iqToggles = 0;
    std::uint64_t aluTurnoffEvents = 0;
    std::uint64_t fpAdderTurnoffEvents = 0;
    std::uint64_t regfileTurnoffEvents = 0;
    std::uint64_t globalStalls = 0;
    std::uint64_t fetchThrottleEvents = 0;
};

/** The paper's combined thermal controller. */
class ResourceBalancingDtm
{
  public:
    /**
     * @param config technique selection and thresholds
     * @param core the pipeline to steer
     * @param floorplan used to resolve sensor indices
     */
    ResourceBalancingDtm(const DtmConfig& config, OooCore& core,
                         const Floorplan& floorplan);

    /**
     * Act on one sensor sample (temperatures indexed by floorplan
     * block, as produced by SensorBank::readAll).
     * @return Continue, or GlobalStall if the temporal fallback
     *         must engage.
     */
    DtmAction sample(const std::vector<Kelvin>& temps);

    /**
     * Same policy evaluation with the hottest block temperature
     * already reduced by the caller (the simulator's batched
     * interval pass computes it while reading the sensors, so the
     * fetch-throttle comparator need not rescan the vector).
     */
    DtmAction sample(const std::vector<Kelvin>& temps,
                     Kelvin hottest);

    const DtmStats& stats() const { return stats_; }
    const DtmConfig& config() const { return config_; }

    /** @return true if the given int ALU is currently turned off
     * because its register-file copy is cooling (for tests). */
    bool aluOffForRegfile(int alu) const;

    /** Zero the lifetime statistics (warm-fork measurement reset;
     * turnoff state is left as-is). */
    void resetStats() { stats_ = DtmStats{}; }

    /** Serialize turnoff bookkeeping and statistics. */
    void saveState(StateWriter& w) const;

    /** Restore state saved by saveState(). */
    void loadState(StateReader& r);

  private:
    /** Toggle handling for one queue given its two half blocks. */
    void sampleQueue(IssueQueue& iq, const std::vector<Kelvin>& t,
                     const int half_blocks[2]);

    DtmConfig config_; // ckpt:skip(config, supplied by the restoring run)
    OooCore& core_;    // ckpt:skip(wiring reference, serialized as its own chunks)

    // Cached floorplan indices (rebuilt from the floorplan in the
    // constructor, never mutated during a run).
    int intQHalf_[2];  // ckpt:skip(rebuildable floorplan cache)
    int fpQHalf_[2];   // ckpt:skip(rebuildable floorplan cache)
    int intExec_[kMaxIntAlus];      // ckpt:skip(rebuildable floorplan cache)
    int fpAdd_[kMaxFpAdders];       // ckpt:skip(rebuildable floorplan cache)
    int intReg_[kMaxRegfileCopies]; // ckpt:skip(rebuildable floorplan cache)
    std::vector<int> otherMonitored_; // ckpt:skip(rebuildable floorplan cache)

    int numIntAlus_;
    int numFpAdders_;
    int numRegCopies_;

    bool regCopyOff_[kMaxRegfileCopies] = {};
    std::uint8_t aluUnitOff_[kMaxIntAlus] = {};
    std::uint8_t fpUnitOff_[kMaxFpAdders] = {};

    DtmStats stats_;
};

} // namespace tempest

#endif // TEMPEST_DTM_DTM_POLICY_HH
