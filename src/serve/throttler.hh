/**
 * @file
 * Per-client token-bucket admission control for the serve daemon
 * (the single-process scale-down of YTsaurus's
 * distributed_throttler: each client principal owns a bucket;
 * over-limit requests are shed with an explicit retry_after
 * instead of queueing unboundedly).
 *
 * Time is injected as a seconds timestamp rather than read from a
 * clock so the policy is unit-testable on a virtual timeline; the
 * daemon feeds it a monotonic clock. A request that finds the
 * bucket empty is REJECTED (never blocked) and told how long
 * until the next token matures — load shedding, not queueing,
 * which keeps worst-case memory and latency bounded under burst.
 */

#ifndef TEMPEST_SERVE_THROTTLER_HH
#define TEMPEST_SERVE_THROTTLER_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "common/guarded.hh"

namespace tempest
{
namespace serve
{

/** Outcome of one admission attempt. */
struct AdmitDecision
{
    bool admitted = true;
    /** Seconds until a token matures (0 when admitted). */
    double retryAfter = 0;
};

/** One client's token bucket: capacity `burst`, refill `rate`/s. */
class TokenBucket
{
  public:
    TokenBucket(double rate_per_second, double burst)
        : rate_(rate_per_second),
          burst_(std::max(burst, 1.0)),
          tokens_(std::max(burst, 1.0))
    {}

    /** Try to take one token at time `now` (seconds, monotonic,
     * per-bucket timeline). */
    AdmitDecision acquire(double now);

    double tokens() const { return tokens_; }

  private:
    double rate_;
    double burst_;
    double tokens_;
    double lastRefill_ = 0;
};

/**
 * Thread-safe map of client principal -> bucket. A rate of 0
 * disables throttling (every request admitted). Counts rejected
 * requests for the stats op.
 */
class ClientThrottler
{
  public:
    ClientThrottler(double rate_per_second, double burst)
        : rate_(rate_per_second), burst_(burst)
    {}

    AdmitDecision acquire(const std::string& client, double now);

    std::uint64_t rejected() const;

  private:
    /** rate_/burst_ are immutable after construction; safe to
     * read unlocked. TokenBucket itself is unsynchronized — every
     * bucket is only ever touched through acquire() below, under
     * mutex_. */
    double rate_;
    double burst_;
    mutable Mutex mutex_;
    std::map<std::string, TokenBucket>
        buckets_ GUARDED_BY(mutex_);
    std::uint64_t rejected_ GUARDED_BY(mutex_) = 0;
};

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_THROTTLER_HH
