#include "serve/protocol.hh"

#include <cstdio>

#include "common/log.hh"

namespace tempest
{
namespace serve
{

std::string
hexU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Request
parseRequest(const std::string& line)
{
    const Json doc = Json::parse(line);
    if (!doc.isObject())
        fatal("request must be a JSON object");

    Request req;
    const Json* op = doc.find("op");
    if (!op)
        fatal("request has no \"op\" field");
    const std::string& name = op->asString();
    if (name == "run")
        req.op = RequestOp::Run;
    else if (name == "stats")
        req.op = RequestOp::Stats;
    else if (name == "ping")
        req.op = RequestOp::Ping;
    else if (name == "shutdown")
        req.op = RequestOp::Shutdown;
    else
        fatal("unknown op '", name,
              "' (run|stats|ping|shutdown)");

    if (const Json* client = doc.find("client"))
        req.client = client->asString();

    if (req.op != RequestOp::Run)
        return req;

    const Json* benchmark = doc.find("benchmark");
    if (!benchmark)
        fatal("run request has no \"benchmark\" field");
    req.benchmark = benchmark->asString();
    if (req.benchmark.empty())
        fatal("run request has an empty benchmark name");

    const Json* cycles = doc.find("cycles");
    if (!cycles)
        fatal("run request has no \"cycles\" field");
    req.cycles = cycles->asUnsigned();
    if (req.cycles == 0)
        fatal("run request cycles must be > 0");

    if (const Json* seed = doc.find("seed"))
        req.seed = seed->asUnsigned();
    if (const Json* warm = doc.find("warm"))
        req.warm = warm->asBool();

    if (const Json* config = doc.find("config")) {
        for (const auto& [key, value] : config->asObject()) {
            switch (value.type()) {
              case Json::Type::String:
                req.config.set(key, value.asString());
                break;
              case Json::Type::Bool:
                req.config.setBool(key, value.asBool());
                break;
              case Json::Type::Number:
                // Preserve integer-ness so "run.seed": 7 works
                // with the strict integer parser downstream.
                if (value.asDouble() ==
                    static_cast<double>(value.asInt())) {
                    req.config.setInt(key, value.asInt());
                } else {
                    req.config.setDouble(key,
                                         value.asDouble());
                }
                break;
              default:
                fatal("config value for '", key,
                      "' must be a scalar");
            }
        }
    }

    // "seed" is shorthand for run.seed; an explicit config entry
    // wins so a pasted tempest_run config behaves identically.
    if (req.config.has("run.seed")) {
        const std::int64_t seed = req.config.getInt("run.seed");
        if (seed < 0)
            fatal("run.seed must be >= 0 (got ", seed, ")");
        req.seed = static_cast<std::uint64_t>(seed);
    } else {
        req.config.setInt("run.seed",
                          static_cast<std::int64_t>(req.seed));
    }
    return req;
}

std::string
encodeRequest(const Request& req)
{
    Json msg;
    switch (req.op) {
      case RequestOp::Run:
        msg["op"] = Json("run");
        break;
      case RequestOp::Stats:
        msg["op"] = Json("stats");
        break;
      case RequestOp::Ping:
        msg["op"] = Json("ping");
        break;
      case RequestOp::Shutdown:
        msg["op"] = Json("shutdown");
        break;
    }
    if (!req.client.empty())
        msg["client"] = Json(req.client);
    if (req.op == RequestOp::Run) {
        msg["benchmark"] = Json(req.benchmark);
        msg["cycles"] = Json(req.cycles);
        msg["seed"] = Json(req.seed);
        msg["warm"] = Json(req.warm);
        // Config entries are stringly typed, so they encode as
        // JSON strings and round-trip through parseRequest's
        // String branch verbatim (run.seed included — the parser
        // folds it back into req.seed).
        Json config;
        for (const auto& [key, value] : req.config.entries())
            config[key] = Json(value);
        msg["config"] = config;
    }
    return msg.dump();
}

std::string
canonicalRunIdentity(const Request& req)
{
    // Config::render() yields sorted "key = value" lines, so the
    // identity is independent of the order request fields arrived
    // in. benchmark/seed/cycles are part of the render via
    // run.seed plus the explicit fields below.
    std::string id;
    id += "benchmark=" + req.benchmark + "\n";
    id += "seed=" + hexU64(req.seed) + "\n";
    id += "cycles=" + std::to_string(req.cycles) + "\n";
    id += req.config.render();
    return id;
}

std::string
encodeError(const std::string& message,
            double retry_after_seconds)
{
    Json reply;
    reply["ok"] = Json(false);
    reply["error"] = Json(message);
    if (retry_after_seconds >= 0.0)
        reply["retry_after"] = Json(retry_after_seconds);
    return reply.dump();
}

std::string
encodeOk(const std::string& op)
{
    Json reply;
    reply["ok"] = Json(true);
    reply["op"] = Json(op);
    return reply.dump();
}

} // namespace serve
} // namespace tempest
