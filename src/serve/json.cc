#include "serve/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace tempest
{
namespace serve
{

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: expected bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        fatal("json: expected number");
    return num_;
}

std::int64_t
Json::asInt() const
{
    if (type_ != Type::Number)
        fatal("json: expected number");
    if (isInt_)
        return int_;
    const double r = std::floor(num_);
    if (r != num_)
        fatal("json: expected integer, got ", num_);
    // 2^63 is exactly representable; anything at or beyond it
    // (or below -2^63) would be UB to cast.
    if (!(r >= -9223372036854775808.0 &&
          r < 9223372036854775808.0)) {
        fatal("json: integer out of int64 range: ", num_);
    }
    return static_cast<std::int64_t>(r);
}

std::uint64_t
Json::asUnsigned() const
{
    const std::int64_t v = asInt();
    if (v < 0)
        fatal("json: expected non-negative integer, got ", v);
    return static_cast<std::uint64_t>(v);
}

const std::string&
Json::asString() const
{
    if (type_ != Type::String)
        fatal("json: expected string");
    return str_;
}

const Json::Array&
Json::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: expected array");
    return arr_;
}

const Json::Object&
Json::asObject() const
{
    if (type_ != Type::Object)
        fatal("json: expected object");
    return obj_;
}

const Json*
Json::find(const std::string& key) const
{
    if (type_ != Type::Object)
        return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

Json&
Json::operator[](const std::string& key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fatal("json: operator[] on non-object");
    return obj_[key];
}

namespace
{

void
dumpString(const std::string& s, std::string& out)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Streaming parser over a string_view; fatal() with position on
 * malformed input. */
class Parser
{
  public:
    /** Containers nested deeper than this fail the parse instead
     * of recursing: a request line of kMaxLineBytes '['s must
     * produce an error reply, not a poll-thread stack overflow. */
    static constexpr int kMaxDepth = 64;

    explicit Parser(std::string_view text) : text_(text) {}

    Json document()
    {
        Json v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char* what)
    {
        fatal("json parse error at byte ", pos_, ": ", what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeWord(std::string_view w)
    {
        if (text_.substr(pos_, w.size()) != w)
            return false;
        pos_ += w.size();
        return true;
    }

    Json
    value()
    {
        if (depth_ >= kMaxDepth)
            fail("nesting too deep");
        ++depth_;
        Json v = valueInner();
        --depth_;
        return v;
    }

    Json
    valueInner()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return Json(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return Json();
          default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json::Object out;
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(out));
        }
        for (;;) {
            std::string key = string();
            expect(':');
            out[std::move(key)] = value();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return Json(std::move(out));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    array()
    {
        expect('[');
        Json::Array out;
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(out));
        }
        for (;;) {
            out.push_back(value());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return Json(std::move(out));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |=
                            static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |=
                            static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (basic multilingual plane only;
                // surrogate pairs are rejected as out of scope
                // for a local control protocol).
                if (code >= 0xd800 && code <= 0xdfff)
                    fail("surrogate pairs unsupported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
        fail("unterminated string");
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' ||
                       c == '+' || c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string text(text_.substr(start, pos_ - start));
        char* end = nullptr;
        if (integral) {
            errno = 0;
            const std::int64_t v =
                std::strtoll(text.c_str(), &end, 10);
            // Over-range literals saturate with ERANGE; fall
            // through to the double path instead of silently
            // clamping to +/-INT64_MAX.
            if (errno != ERANGE &&
                end == text.c_str() + text.size()) {
                return Json(v);
            }
        }
        errno = 0;
        const double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size())
            fail("malformed number");
        if (!std::isfinite(d))
            fail("number out of range");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

void
Json::dumpTo(std::string& out) const
{
    switch (type_) {
      case Type::Null: out += "null"; break;
      case Type::Bool: out += bool_ ? "true" : "false"; break;
      case Type::Number: {
        char buf[32];
        if (isInt_) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(int_));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
        }
        out += buf;
        break;
      }
      case Type::String: dumpString(str_, out); break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const Json& v : arr_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            dumpString(k, out);
            out += ':';
            v.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace serve
} // namespace tempest
