/**
 * @file
 * Content-addressed result cache for the serve daemon.
 *
 * Keyed by the canonical run identity (benchmark, seed, cycles,
 * full config render — see protocol.hh), i.e. the deterministic
 * inputs that fully name a simulation. Because every execution
 * path in the daemon is bit-deterministic for a given identity, a
 * cached entry is indistinguishable from a recomputation — the
 * property the hammer test asserts via result_hash equality.
 *
 * Bounded LRU with thread-safe get/put and hit/miss/eviction
 * counters. Entries store the already-encoded reply body fields
 * (SimResult summary + result_hash), not the full SimResult, so
 * the cache footprint is a few hundred bytes per entry.
 */

#ifndef TEMPEST_SERVE_RESULT_CACHE_HH
#define TEMPEST_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/guarded.hh"
#include "serve/json.hh"

namespace tempest
{
namespace serve
{

/** Cached outcome of one deterministic run identity. */
struct CachedResult
{
    std::uint64_t resultHash = 0;
    /** Reply payload fields (benchmark, ipc, cycles, ...) ready
     * to be merged into a response object. */
    Json payload;
    /** Wall seconds the original computation took (serving
     * metadata, reported so clients can see what a hit saved). */
    double computeSeconds = 0;
};

/** Counters exported through the stats op. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Thread-safe bounded LRU over canonical run identities. */
class ResultCache
{
  public:
    explicit ResultCache(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    /** Look up an identity; counts a hit or miss and refreshes
     * recency on hit. */
    std::optional<CachedResult> get(const std::string& key);

    /**
     * Insert (or refresh) an identity. Duplicate puts from racing
     * workers are benign: determinism guarantees the values are
     * identical, so last-write-wins changes nothing observable.
     */
    void put(const std::string& key, CachedResult value);

    CacheStats stats() const;

  private:
    struct Entry
    {
        std::string key;
        CachedResult value;
    };

    mutable Mutex mutex_;
    /** Immutable after construction; safe to read unlocked. */
    std::size_t capacity_;
    /** Most-recently-used at the front. */
    std::list<Entry> lru_ GUARDED_BY(mutex_);
    std::map<std::string, std::list<Entry>::iterator>
        index_ GUARDED_BY(mutex_);
    std::uint64_t hits_ GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_ GUARDED_BY(mutex_) = 0;
    std::uint64_t evictions_ GUARDED_BY(mutex_) = 0;
};

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_RESULT_CACHE_HH
