/**
 * @file
 * tempest_serve wire protocol (DESIGN.md §13).
 *
 * Transport: line-delimited JSON over a local stream socket. One
 * request per line, one response line per request, in order per
 * connection.
 *
 * Requests:
 *
 *   {"op":"run","benchmark":"eon","cycles":2000000,
 *    "seed":1,"config":{"dtm.toggling":"true", ...},
 *    "warm":true,"client":"sweeper-3"}
 *   {"op":"stats"}
 *   {"op":"ping"}
 *   {"op":"shutdown"}
 *
 * "config" holds the same dotted keys tempest_run accepts
 * (sim_config_io.hh); "seed" is shorthand for config run.seed;
 * "warm" opts out of the warm-snapshot pool when false. "client"
 * names the rate-limiting principal (defaults to the connection).
 *
 * Responses always carry "ok". Successful run replies include the
 * deterministic identity ("benchmark", "seed") and the result
 * ("result_hash" as a hex string, "ipc", "cycles",
 * "instructions", "stall_cycles"), plus serving metadata that is
 * NOT part of the result identity: "cached", "wall_seconds".
 * Load-shedding errors carry "retry_after" (seconds), the
 * explicit backpressure signal: clients must back off instead of
 * retrying immediately.
 */

#ifndef TEMPEST_SERVE_PROTOCOL_HH
#define TEMPEST_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "serve/json.hh"

namespace tempest
{
namespace serve
{

/** Request kinds the daemon understands. */
enum class RequestOp
{
    Run,
    Stats,
    Ping,
    Shutdown
};

/** One parsed request line. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    /** Rate-limiting principal ("" = per-connection default). */
    std::string client;

    // ---- op == Run ----
    std::string benchmark;
    std::uint64_t cycles = 0;
    /** Effective run seed (the "seed" field, overridable by an
     * explicit config run.seed entry). */
    std::uint64_t seed = 1;
    /** Use the warm-snapshot pool (default true). */
    bool warm = true;
    /** Dotted-key overrides, already merged with the seed. */
    Config config;
};

/**
 * Parse one request line; fatal() (FatalError) on malformed JSON,
 * unknown ops, or invalid fields — the server turns that into an
 * error reply.
 */
Request parseRequest(const std::string& line);

/**
 * Encode a request as one wire line — the C++ client side of
 * parseRequest (tools/serve_hammer.py builds the same shape in
 * Python). parseRequest(encodeRequest(r)) reproduces r field for
 * field; the lint protocol-schema pass holds the two key sets in
 * lockstep.
 */
std::string encodeRequest(const Request& req);

/**
 * Canonical text identity of a run request: benchmark, effective
 * seed, cycles, and the full sorted render of the config
 * overlays. Two requests with equal canonical identity name the
 * same deterministic simulation, which is exactly the result
 * cache's key (and subsumes the benchmark/seed/geometry identity
 * restoreCheckpoint validates).
 */
std::string canonicalRunIdentity(const Request& req);

/** Error reply; retry_after_seconds < 0 omits the field. */
std::string encodeError(const std::string& message,
                        double retry_after_seconds = -1.0);

/** Trivial ok reply ({"ok":true,"op":...}). */
std::string encodeOk(const std::string& op);

/** Hex "0x..." rendering used for hashes and seeds on the wire. */
std::string hexU64(std::uint64_t v);

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_PROTOCOL_HH
