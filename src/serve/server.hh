/**
 * @file
 * tempest_serve daemon core (DESIGN.md §13): a long-running
 * experiment service over a local Unix-domain stream socket.
 *
 * Architecture (one process, YTsaurus's service-program shape
 * scaled down):
 *
 *   poll thread    accepts connections, frames request lines,
 *                  answers cache hits / stats / ping inline,
 *                  applies admission control, enqueues misses
 *   bounded queue  at most `queueDepth` pending computations;
 *                  overflow is shed with retry_after, never
 *                  queued unboundedly
 *   worker pool    `threads` simulation workers; each job warms
 *                  (through the shared WarmSnapshotPool) or runs
 *                  cold, hashes the result, fills the
 *                  ResultCache, and replies
 *
 * Identical in-flight requests are coalesced (single-flight): the
 * first request computes, later ones attach as waiters and are
 * answered from the same result, so a burst of duplicate cold
 * queries costs one simulation.
 *
 * Replies are written by whichever thread finishes the work, so
 * cross-request ordering on one connection is not guaranteed;
 * requests may carry an "id" that is echoed in the reply for
 * correlation. Per-request determinism is absolute: a given run
 * identity always yields the same result_hash, served from cache
 * or computed.
 */

#ifndef TEMPEST_SERVE_SERVER_HH
#define TEMPEST_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/guarded.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/throttler.hh"
#include "serve/warm_pool.hh"

namespace tempest
{
namespace serve
{

/** Daemon tuning knobs (tools/tempest_serve.cc flags). */
struct ServeOptions
{
    /** Unix-domain socket path (required). */
    std::string socketPath;
    /** Simulation worker threads. */
    int threads = 2;
    /** Maximum queued (not yet running) computations. */
    std::size_t queueDepth = 16;
    /** Per-client admitted requests per second; 0 = unlimited. */
    double ratePerSecond = 0;
    /** Per-client burst allowance (bucket capacity). */
    double rateBurst = 4;
    /** Result-cache entries. */
    std::size_t cacheCapacity = 512;
    /** Warm-up cycles baked into pool snapshots; 0 disables the
     * warm pool (every miss runs cold from cycle 0). */
    std::uint64_t warmupCycles = 0;
    /** Reject run requests beyond this many cycles. */
    std::uint64_t maxRequestCycles = 1'000'000'000;
};

/** Counters for the stats op (beyond CacheStats). */
struct ServeStats
{
    CacheStats cache;
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t rateLimited = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t jobsFailed = 0;
    double computeSecondsTotal = 0;
    std::size_t warmPoolSize = 0;
    std::uint64_t warmBuilds = 0;
};

/** The daemon: start(), then waitStopped() or stop(). */
class ServeDaemon
{
  public:
    explicit ServeDaemon(ServeOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /** Bind the socket and spawn the poll + worker threads;
     * fatal() if the socket cannot be bound. */
    void start();

    /** Ask the daemon to stop (signal-handler safe via
     * wakeFd()). Returns immediately. */
    void requestStop();

    /** Block until a stop was requested (shutdown op, signal, or
     * stop()). */
    void waitStopped();

    /** Stop and join everything; idempotent. */
    void stop();

    /** Write end of the self-pipe: writing the byte 'q' from a
     * signal handler wakes the poll loop and stops the daemon.
     * (Other bytes — the internal 'w' — just wake the loop so it
     * re-arms POLLOUT for freshly queued replies.) */
    int wakeFd() const { return wakePipe_[1]; }

    ServeStats stats() const;

  private:
    /** One client connection. The socket is non-blocking;
     * replies go through `tx`, an outbox flushed
     * opportunistically by sendLine() and drained on POLLOUT by
     * the poll thread, so a peer that never reads can never
     * block a daemon thread. writeMutex guards everything both
     * sides touch (sock/tx/broken/wakeQueued); name and rx stay
     * poll-thread-only and need no lock. */
    struct Connection
    {
        std::string name; ///< default rate-limit principal
        std::string rx;   ///< partial-line receive buffer
        Mutex writeMutex;
        int sock GUARDED_BY(writeMutex) = -1;
        /** Pending unsent reply bytes. */
        std::string tx GUARDED_BY(writeMutex);
        /** Write failed; drop silently. */
        bool broken GUARDED_BY(writeMutex) = false;
        /** Poll-loop wake already sent. */
        bool wakeQueued GUARDED_BY(writeMutex) = false;
    };
    using ConnPtr = std::shared_ptr<Connection>;

    struct Job
    {
        ConnPtr conn;
        Request req;
        std::string key;
        Json id; ///< echoed correlation id (null if absent)
    };

    // ---- poll-thread side ----
    void pollLoop();
    void acceptOne();
    void readFrom(const ConnPtr& conn);
    void handleLine(const ConnPtr& conn, const std::string& line);
    void handleRun(const ConnPtr& conn, Request req,
                   const Json& id);
    std::string statsReply() const;

    // ---- worker side ----
    void workerLoop();
    void computeJob(const Job& job);

    void sendLine(const ConnPtr& conn, const std::string& line);
    /** Drain conn.tx without blocking. */
    void flushLocked(Connection& conn)
        REQUIRES(conn.writeMutex);
    double nowSeconds() const;

    ServeOptions options_;
    ResultCache cache_;
    ClientThrottler throttler_;
    WarmSnapshotPool warmPool_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::uint64_t connCounter_ = 0;

    std::thread pollThread_;
    std::vector<std::thread> workers_;
    std::map<int, ConnPtr> conns_; ///< poll thread only

    // Queue + single-flight registry (one mutex guards both).
    mutable Mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_ GUARDED_BY(queueMutex_);
    std::map<std::string, std::vector<Job>>
        inflight_ GUARDED_BY(queueMutex_);

    // Stop notification for waitStopped(). The mutex guards no
    // data (the predicate is the stopping_ atomic); it exists
    // only to serialize the cv wait/notify handshake.
    mutable Mutex stopMutex_;
    std::condition_variable stopCv_;

    std::uint64_t shedQueueFull_ GUARDED_BY(queueMutex_) = 0;
    std::uint64_t jobsDone_ GUARDED_BY(queueMutex_) = 0;
    std::uint64_t jobsFailed_ GUARDED_BY(queueMutex_) = 0;
    double computeSecondsTotal_ GUARDED_BY(queueMutex_) = 0;

    std::int64_t startTick_ = 0; ///< monotonic epoch for now()
};

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_SERVER_HH
