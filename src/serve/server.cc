#include "serve/server.hh"

#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace serve
{

namespace
{

/** Max buffered bytes without a newline before a connection is
 * considered hostile and dropped. */
constexpr std::size_t kMaxLineBytes = 1 << 20;

/** Max unsent reply bytes per connection. A peer that issues
 * requests but never reads its socket hits this cap and is
 * dropped — the mirror image of the kMaxLineBytes defense. */
constexpr std::size_t kMaxOutboxBytes = 1 << 20;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/**
 * Warm identity: the request's config with every DTM technique
 * neutralized (the warm-fork discipline — no technique-specific
 * state may leak into the snapshot) plus the fields the warm-up
 * trajectory depends on. Requests that differ only in DTM
 * technique settings share one warm snapshot, which is exactly
 * the sweep access pattern.
 */
Config
neutralWarmConfig(const Config& request_config)
{
    Config warm = request_config;
    warm.setBool("dtm.toggling", false);
    warm.setBool("dtm.alu_turnoff", false);
    warm.setBool("dtm.regfile_turnoff", false);
    warm.setBool("dtm.round_robin", false);
    warm.setBool("dtm.fetch_throttling", false);
    warm.set("dtm.mapping", "priority");
    return warm;
}

} // namespace

ServeDaemon::ServeDaemon(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheCapacity),
      throttler_(options_.ratePerSecond, options_.rateBurst)
{
    if (options_.threads <= 0)
        options_.threads = 1;
    if (options_.queueDepth == 0)
        options_.queueDepth = 1;
    startTick_ =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // det:allow(serving-layer clock for rate limiting; never feeds simulation state)
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

double
ServeDaemon::nowSeconds() const
{
    const std::int64_t tick =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // det:allow(serving-layer clock for rate limiting; never feeds simulation state)
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return static_cast<double>(tick - startTick_) * 1e-9;
}

void
ServeDaemon::start()
{
    if (started_)
        fatal("serve daemon already started");
    if (options_.socketPath.empty())
        fatal("serve daemon needs a socket path");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        fatal("socket path '", options_.socketPath,
              "' is too long for AF_UNIX (max ",
              sizeof(addr.sun_path) - 1, " bytes)");
    }
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("cannot create socket: ", std::strerror(errno));
    // A stale socket file from a crashed daemon would make bind
    // fail; remove it (connect() on a live daemon's path would
    // still have worked, so this only recycles dead paths in
    // practice — a supervising script owns exclusivity).
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_,
               reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        fatal("cannot bind '", options_.socketPath,
              "': ", std::strerror(errno));
    }
    if (::listen(listenFd_, 64) != 0)
        fatal("cannot listen: ", std::strerror(errno));
    if (::pipe(wakePipe_) != 0)
        fatal("cannot create wake pipe: ",
              std::strerror(errno));
    // The poll thread must never block on I/O: the listener, the
    // wake pipe, and every accepted fd are non-blocking.
    setNonBlocking(listenFd_);
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);

    started_ = true;
    stopping_.store(false, std::memory_order_release);
    pollThread_ = std::thread([this] { pollLoop(); });
    workers_.reserve(static_cast<std::size_t>(options_.threads));
    for (int t = 0; t < options_.threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ServeDaemon::requestStop()
{
    stopping_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n =
            ::write(wakePipe_[1], &byte, 1);
    }
    queueCv_.notify_all();
    stopCv_.notify_all();
}

void
ServeDaemon::waitStopped()
{
    MutexLock lock(stopMutex_);
    // The predicate only reads the stopping_ atomic (no guarded
    // state), so the lambda is lock-discipline clean.
    stopCv_.wait(lock.native(), [this] {
        return stopping_.load(std::memory_order_acquire);
    });
}

void
ServeDaemon::stop()
{
    if (!started_)
        return;
    requestStop();
    if (pollThread_.joinable())
        pollThread_.join();
    for (std::thread& t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int& fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    conns_.clear();
    ::unlink(options_.socketPath.c_str());
    started_ = false;
}

ServeStats
ServeDaemon::stats() const
{
    ServeStats s;
    s.cache = cache_.stats();
    {
        MutexLock lock(queueMutex_);
        s.queueDepth = queue_.size();
        s.shedQueueFull = shedQueueFull_;
        s.jobsDone = jobsDone_;
        s.jobsFailed = jobsFailed_;
        s.computeSecondsTotal = computeSecondsTotal_;
    }
    s.queueCapacity = options_.queueDepth;
    s.rateLimited = throttler_.rejected();
    s.warmPoolSize = warmPool_.size();
    s.warmBuilds = warmPool_.builds();
    return s;
}

// ---------------------------------------------------------------
// Poll thread
// ---------------------------------------------------------------

void
ServeDaemon::pollLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        std::vector<int> doomed;
        fds.reserve(conns_.size() + 2);
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakePipe_[0], POLLIN, 0});
        for (const auto& [fd, conn] : conns_) {
            short events = POLLIN;
            {
                MutexLock lock(conn->writeMutex);
                if (conn->broken) {
                    // Write side gave up on this peer (outbox
                    // overflow or send error); reap it here.
                    doomed.push_back(fd);
                    continue;
                }
                if (!conn->tx.empty())
                    events |= POLLOUT;
                conn->wakeQueued = false;
            }
            fds.push_back(pollfd{fd, events, 0});
        }
        for (const int fd : doomed) {
            const auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            {
                MutexLock lock(it->second->writeMutex);
                ::close(it->second->sock);
                it->second->sock = -1;
            }
            conns_.erase(it);
        }

        const int ready =
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve poll failed: ", std::strerror(errno));
            break;
        }
        // Wake pipe: a 'q' byte (requestStop(), or the signal
        // handler via wakeFd()) is a stop request; 'w' bytes just
        // force a fresh round so new outbox data gets POLLOUT.
        bool stopByte = false;
        if (fds[1].revents & POLLIN) {
            char buf[64];
            for (;;) {
                const ssize_t n =
                    ::read(wakePipe_[0], buf, sizeof(buf));
                if (n <= 0)
                    break;
                for (ssize_t i = 0; i < n; ++i) {
                    if (buf[i] == 'q')
                        stopByte = true;
                }
                if (n < static_cast<ssize_t>(sizeof(buf)))
                    break;
            }
        }
        if (stopByte) {
            // Idempotent if requestStop() already ran; this is
            // the path that turns a signal into a stop.
            requestStop();
            break;
        }
        if (stopping_.load(std::memory_order_acquire))
            break;
        if (fds[0].revents & POLLIN)
            acceptOne();
        for (std::size_t i = 2; i < fds.size(); ++i) {
            if (fds[i].revents & POLLOUT) {
                const auto it = conns_.find(fds[i].fd);
                if (it != conns_.end()) {
                    MutexLock lock(it->second->writeMutex);
                    flushLocked(*it->second);
                }
            }
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                const auto it = conns_.find(fds[i].fd);
                if (it != conns_.end())
                    readFrom(it->second);
            }
        }
    }
    // Close client fds so blocked peers see EOF promptly.
    for (auto& [fd, conn] : conns_) {
        MutexLock lock(conn->writeMutex);
        ::close(conn->sock);
        conn->sock = -1;
    }
}

void
ServeDaemon::acceptOne()
{
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    auto conn = std::make_shared<Connection>();
    setNonBlocking(fd);
    {
        // No other thread can see this connection yet, but sock
        // is guarded state — take the (uncontended) lock so the
        // write is provably disciplined.
        MutexLock lock(conn->writeMutex);
        conn->sock = fd;
    }
    conn->name = "conn" + std::to_string(connCounter_++);
    conns_[fd] = std::move(conn);
}

void
ServeDaemon::readFrom(const ConnPtr& conn)
{
    // Snapshot the socket under the lock (the poll thread is the
    // only writer of sock, but discipline is cheaper than the
    // exception). recv() itself runs off-lock so a worker
    // flushing replies is never blocked behind a slow read.
    int sock = -1;
    {
        MutexLock lock(conn->writeMutex);
        sock = conn->sock;
    }
    if (sock < 0)
        return;
    char buf[65536];
    const ssize_t n = ::recv(sock, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
        return; // spurious wakeup on a non-blocking fd
    }
    if (n <= 0) {
        // EOF or error: forget the connection. Workers holding
        // the ConnPtr will notice `broken`/closed fd on write.
        {
            MutexLock lock(conn->writeMutex);
            ::close(conn->sock);
            conn->sock = -1;
        }
        conns_.erase(sock);
        return;
    }
    conn->rx.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = conn->rx.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line =
            conn->rx.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty())
            handleLine(conn, line);
        if (stopping_.load(std::memory_order_acquire))
            break;
    }
    conn->rx.erase(0, start);
    if (conn->rx.size() > kMaxLineBytes) {
        sendLine(conn,
                 encodeError("request line exceeds 1 MiB"));
        {
            MutexLock lock(conn->writeMutex);
            ::close(conn->sock);
            conn->sock = -1;
        }
        conns_.erase(sock);
    }
}

void
ServeDaemon::handleLine(const ConnPtr& conn,
                        const std::string& line)
{
    Request req;
    Json id;
    try {
        const Json doc = Json::parse(line);
        if (const Json* reqId = doc.find("id"))
            id = *reqId;
        req = parseRequest(line);
    } catch (const FatalError& e) {
        Json reply = Json::parse(encodeError(e.what()));
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
    }
    switch (req.op) {
      case RequestOp::Ping: {
        Json reply = Json::parse(encodeOk("ping"));
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
      }
      case RequestOp::Stats: {
        Json reply = Json::parse(statsReply());
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
      }
      case RequestOp::Shutdown: {
        Json reply = Json::parse(encodeOk("shutdown"));
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        requestStop();
        return;
      }
      case RequestOp::Run:
        handleRun(conn, std::move(req), id);
        return;
    }
}

std::string
ServeDaemon::statsReply() const
{
    const ServeStats s = stats();
    Json reply;
    reply["ok"] = Json(true);
    reply["op"] = Json("stats");
    Json cache;
    cache["hits"] = Json(s.cache.hits);
    cache["misses"] = Json(s.cache.misses);
    cache["evictions"] = Json(s.cache.evictions);
    cache["entries"] =
        Json(static_cast<std::uint64_t>(s.cache.entries));
    cache["capacity"] =
        Json(static_cast<std::uint64_t>(s.cache.capacity));
    cache["hit_rate"] = Json(s.cache.hitRate());
    reply["cache"] = cache;
    reply["queue_depth"] =
        Json(static_cast<std::uint64_t>(s.queueDepth));
    reply["queue_capacity"] =
        Json(static_cast<std::uint64_t>(s.queueCapacity));
    reply["shed_queue_full"] = Json(s.shedQueueFull);
    reply["rate_limited"] = Json(s.rateLimited);
    reply["jobs_done"] = Json(s.jobsDone);
    reply["jobs_failed"] = Json(s.jobsFailed);
    reply["compute_seconds_total"] =
        Json(s.computeSecondsTotal);
    reply["warm_pool_size"] =
        Json(static_cast<std::uint64_t>(s.warmPoolSize));
    reply["warm_builds"] = Json(s.warmBuilds);
    reply["threads"] = Json(options_.threads);
    reply["warmup_cycles"] = Json(options_.warmupCycles);
    return reply.dump();
}

void
ServeDaemon::handleRun(const ConnPtr& conn, Request req,
                       const Json& id)
{
    if (req.cycles > options_.maxRequestCycles) {
        Json reply = Json::parse(encodeError(
            "cycles " + std::to_string(req.cycles) +
            " exceeds the per-request limit of " +
            std::to_string(options_.maxRequestCycles)));
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
    }

    // The execution mode is part of the result identity: a warm
    // fork measures `cycles` after a shared warm-up, a cold run
    // measures from cycle 0, and the two are different (equally
    // deterministic) simulations.
    const bool warm =
        req.warm && options_.warmupCycles > 0;
    std::string key = canonicalRunIdentity(req);
    key += "warm=" +
           std::to_string(warm ? options_.warmupCycles : 0) +
           "\n";

    if (auto hit = cache_.get(key)) {
        Json reply = hit->payload;
        reply["ok"] = Json(true);
        reply["op"] = Json("run");
        reply["cached"] = Json(true);
        reply["wall_seconds"] = Json(0.0);
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
    }

    const std::string client =
        req.client.empty() ? conn->name : req.client;
    const AdmitDecision admit =
        throttler_.acquire(client, nowSeconds());
    if (!admit.admitted) {
        Json reply = Json::parse(encodeError(
            "rate limit exceeded for client '" + client + "'",
            admit.retryAfter));
        if (!id.isNull())
            reply["id"] = id;
        sendLine(conn, reply.dump());
        return;
    }

    Job job;
    job.conn = conn;
    job.req = std::move(req);
    job.key = std::move(key);
    job.id = id;
    {
        MutexLock lock(queueMutex_);
        const auto flight = inflight_.find(job.key);
        if (flight != inflight_.end()) {
            // Single-flight: attach to the in-progress
            // computation instead of queueing a duplicate.
            flight->second.push_back(std::move(job));
            return;
        }
        if (queue_.size() >= options_.queueDepth) {
            ++shedQueueFull_;
            // Estimate how long a queue slot takes to free up:
            // observed mean compute time, or a conservative
            // default before any job finished.
            const double mean =
                jobsDone_ > 0
                    ? computeSecondsTotal_ /
                          static_cast<double>(jobsDone_)
                    : 0.25;
            lock.unlock();
            Json reply = Json::parse(encodeError(
                "queue full (" +
                    std::to_string(options_.queueDepth) +
                    " pending)",
                mean));
            if (!id.isNull())
                reply["id"] = id;
            sendLine(conn, reply.dump());
            return;
        }
        inflight_[job.key] = {};
        queue_.push_back(std::move(job));
    }
    queueCv_.notify_one();
}

// ---------------------------------------------------------------
// Workers
// ---------------------------------------------------------------

void
ServeDaemon::workerLoop()
{
    for (;;) {
        Job job;
        {
            MutexLock lock(queueMutex_);
            // An explicit predicate loop instead of the lambda
            // form: clang's thread-safety analysis treats lambda
            // bodies as separate unannotated functions, so
            // touching queue_ inside one would defeat the
            // GUARDED_BY proof. wait() unlocks and relocks
            // lock.native(), so queue_ is held at every read.
            while (!stopping_.load(
                       std::memory_order_acquire) &&
                   queue_.empty()) {
                queueCv_.wait(lock.native());
            }
            if (stopping_.load(std::memory_order_acquire))
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        computeJob(job);
    }
}

void
ServeDaemon::computeJob(const Job& job)
{
    const Request& req = job.req;
    const double t0 = nowSeconds();
    Json payload;
    std::string error;
    std::uint64_t hash = 0;
    try {
        const SimConfig config =
            simConfigFromConfig(req.config);
        const bool warm =
            req.warm && options_.warmupCycles > 0;
        SimResult result;
        if (warm) {
            const Config warm_cfg =
                neutralWarmConfig(req.config);
            const std::string warm_key =
                req.benchmark + "\n" + hexU64(req.seed) +
                "\n" +
                std::to_string(options_.warmupCycles) + "\n" +
                warm_cfg.render();
            const std::shared_ptr<const std::string> snap =
                warmPool_.get(warm_key, [&] {
                    return experiments::warmSnapshot(
                        simConfigFromConfig(warm_cfg),
                        req.benchmark, req.seed,
                        options_.warmupCycles);
                });
            result = experiments::runFromSnapshot(
                config, req.benchmark, req.seed, *snap,
                req.cycles);
        } else {
            Simulator sim(config, spec2000(req.benchmark));
            result = sim.run(req.cycles);
        }
        hash = experiments::hashSimResult(result);
        payload["benchmark"] = Json(result.benchmark);
        payload["seed"] = Json(hexU64(req.seed));
        payload["result_hash"] = Json(hexU64(hash));
        payload["ipc"] = Json(result.ipc);
        payload["cycles"] = Json(result.cycles);
        payload["instructions"] = Json(result.instructions);
        payload["stall_cycles"] = Json(result.stallCycles);
        payload["warm"] = Json(warm);
    } catch (const std::exception& e) {
        error = e.what();
    } catch (...) {
        error = "unknown exception";
    }
    const double seconds = nowSeconds() - t0;

    // Publish to the cache BEFORE dropping the single-flight
    // entry: once inflight_ no longer holds this key, an
    // identical request must find the cache populated, or a
    // duplicate arriving in the gap would recompute the whole
    // simulation.
    if (error.empty()) {
        CachedResult cached;
        cached.resultHash = hash;
        cached.payload = payload;
        cached.computeSeconds = seconds;
        cache_.put(job.key, std::move(cached));
    }

    std::vector<Job> waiters;
    {
        MutexLock lock(queueMutex_);
        if (error.empty()) {
            ++jobsDone_;
            computeSecondsTotal_ += seconds;
        } else {
            ++jobsFailed_;
        }
        const auto it = inflight_.find(job.key);
        if (it != inflight_.end()) {
            waiters = std::move(it->second);
            inflight_.erase(it);
        }
    }

    auto replyTo = [&](const Job& target, bool coalesced) {
        Json reply;
        if (error.empty()) {
            reply = payload;
            reply["ok"] = Json(true);
            reply["op"] = Json("run");
            reply["cached"] = Json(coalesced);
            reply["wall_seconds"] =
                Json(coalesced ? 0.0 : seconds);
        } else {
            reply = Json::parse(encodeError(error));
        }
        if (!target.id.isNull())
            reply["id"] = target.id;
        sendLine(target.conn, reply.dump());
    };
    replyTo(job, false);
    for (const Job& waiter : waiters)
        replyTo(waiter, true);
}

void
ServeDaemon::sendLine(const ConnPtr& conn,
                      const std::string& line)
{
    bool needWake = false;
    {
        MutexLock lock(conn->writeMutex);
        if (conn->sock < 0 || conn->broken)
            return;
        if (conn->tx.size() + line.size() + 1 >
            kMaxOutboxBytes) {
            // The peer keeps sending requests without reading
            // replies; dropping it bounds our memory, exactly
            // like kMaxLineBytes bounds the read side.
            conn->broken = true;
            conn->tx.clear();
        } else {
            conn->tx += line;
            conn->tx += '\n';
            flushLocked(*conn);
        }
        // Broken conns need the poll thread to reap them;
        // residual bytes need it to arm POLLOUT. One queued
        // wake per connection is enough either way.
        if ((conn->broken || !conn->tx.empty()) &&
            !conn->wakeQueued) {
            conn->wakeQueued = true;
            needWake = true;
        }
    }
    if (needWake && wakePipe_[1] >= 0) {
        const char byte = 'w';
        [[maybe_unused]] const ssize_t n =
            ::write(wakePipe_[1], &byte, 1);
    }
}

void
ServeDaemon::flushLocked(Connection& conn)
    REQUIRES(conn.writeMutex)
{
    if (conn.sock < 0 || conn.broken)
        return;
    while (!conn.tx.empty()) {
        const ssize_t n =
            ::send(conn.sock, conn.tx.data(), conn.tx.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            conn.tx.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return; // kernel buffer full; POLLOUT resumes us
        }
        if (n < 0 && errno == EINTR)
            continue;
        // Peer vanished; mark so later replies are dropped
        // without log spam.
        conn.broken = true;
        conn.tx.clear();
        return;
    }
}

} // namespace serve
} // namespace tempest
