#include "serve/throttler.hh"

namespace tempest
{
namespace serve
{

AdmitDecision
TokenBucket::acquire(double now)
{
    if (now > lastRefill_) {
        tokens_ = std::min(burst_,
                           tokens_ + rate_ * (now - lastRefill_));
        lastRefill_ = now;
    }
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return AdmitDecision{true, 0.0};
    }
    AdmitDecision d;
    d.admitted = false;
    // Time until the deficit refills; rate_ == 0 with an empty
    // bucket can only happen via a burst < 1 clamp, so guard it.
    d.retryAfter = rate_ > 0 ? (1.0 - tokens_) / rate_ : 1.0;
    return d;
}

AdmitDecision
ClientThrottler::acquire(const std::string& client, double now)
{
    if (rate_ <= 0)
        return AdmitDecision{true, 0.0};
    MutexLock lock(mutex_);
    auto it = buckets_.find(client);
    if (it == buckets_.end()) {
        it = buckets_
                 .emplace(client, TokenBucket(rate_, burst_))
                 .first;
    }
    const AdmitDecision d = it->second.acquire(now);
    if (!d.admitted)
        ++rejected_;
    return d;
}

std::uint64_t
ClientThrottler::rejected() const
{
    MutexLock lock(mutex_);
    return rejected_;
}

} // namespace serve
} // namespace tempest
