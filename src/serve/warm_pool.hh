/**
 * @file
 * Warm-snapshot pool: per-identity cached warm-up checkpoints so
 * cache-miss requests skip the warm-up prefix (PR 4's warm-fork
 * machinery, kept alive across requests).
 *
 * Keyed by the warm identity — benchmark, seed, warm-up cycle
 * count, and the render of the neutralized config (every DTM
 * technique forced off) — because restoreCheckpoint validates
 * exactly benchmark/seed/geometry and the warm-up trajectory
 * additionally depends on the thermal/pipeline parameters.
 *
 * Build-once semantics under concurrency: the first requester of
 * a key builds the snapshot while later requesters block on a
 * shared_future for the same key, so a burst of cold requests for
 * one benchmark warms it exactly once. A failed build is removed
 * so a later request can retry, and the error is rethrown to
 * every waiter.
 */

#ifndef TEMPEST_SERVE_WARM_POOL_HH
#define TEMPEST_SERVE_WARM_POOL_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "common/guarded.hh"

namespace tempest
{
namespace serve
{

/** Thread-safe build-once pool of warm checkpoint bytes. */
class WarmSnapshotPool
{
  public:
    using Builder = std::function<std::string()>;

    /**
     * Snapshot bytes for `key`, building via `build` on first
     * use. Throws what the builder threw (for every concurrent
     * waiter of that build attempt).
     */
    std::shared_ptr<const std::string>
    get(const std::string& key, const Builder& build);

    std::size_t size() const;

    /** Total builds that ran (cold warms; stats op). */
    std::uint64_t builds() const;

  private:
    using Future =
        std::shared_future<std::shared_ptr<const std::string>>;

    mutable Mutex mutex_;
    /** mutex_ guards the map only; each Future value, once
     * copied out, is read without the lock (shared_future is
     * internally synchronized — the snapshot publication
     * happens-before every waiter's get()). */
    std::map<std::string, Future> pool_ GUARDED_BY(mutex_);
    std::uint64_t builds_ GUARDED_BY(mutex_) = 0;
};

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_WARM_POOL_HH
