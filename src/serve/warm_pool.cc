#include "serve/warm_pool.hh"

namespace tempest
{
namespace serve
{

std::shared_ptr<const std::string>
WarmSnapshotPool::get(const std::string& key,
                      const Builder& build)
{
    std::promise<std::shared_ptr<const std::string>> promise;
    Future future;
    bool builder = false;
    {
        MutexLock lock(mutex_);
        const auto it = pool_.find(key);
        if (it != pool_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            pool_[key] = future;
            ++builds_;
            builder = true;
        }
    }
    if (builder) {
        try {
            promise.set_value(std::make_shared<std::string>(
                build()));
        } catch (...) {
            promise.set_exception(std::current_exception());
            // Drop the failed entry so a later request retries
            // instead of replaying a stale error forever.
            MutexLock lock(mutex_);
            pool_.erase(key);
            future.get(); // rethrows to this builder too
        }
    }
    return future.get();
}

std::size_t
WarmSnapshotPool::size() const
{
    MutexLock lock(mutex_);
    return pool_.size();
}

std::uint64_t
WarmSnapshotPool::builds() const
{
    MutexLock lock(mutex_);
    return builds_;
}

} // namespace serve
} // namespace tempest
