/**
 * @file
 * Minimal JSON value, parser, and serializer for the serve
 * protocol (line-delimited JSON over a local socket).
 *
 * Deliberately small: null, bool, number (double, with an exact
 * integer fast path so 64-bit cycle counts round-trip), string
 * (with the standard escapes), array, and object. Objects are
 * std::map-backed, so iteration — and therefore dump() — is
 * deterministic key order, which keeps protocol golden tests and
 * cache-key canonicalization stable.
 *
 * Parse errors are fatal() (FatalError), which the server catches
 * per request and turns into an error reply instead of dying.
 */

#ifndef TEMPEST_SERVE_JSON_HH
#define TEMPEST_SERVE_JSON_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tempest
{
namespace serve
{

/** One JSON value (recursive). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(std::int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i)),
          int_(i), isInt_(true)
    {}
    Json(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u))
    {
        // Values beyond int64 stay double-represented: a wrapped
        // negative int64 would mis-serialize them. Exact 64-bit
        // values (seeds, hashes) travel as hex strings instead.
        if (u <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())) {
            int_ = static_cast<std::int64_t>(u);
            isInt_ = true;
        }
    }
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(const char* s) : type_(Type::String), str_(s) {}
    Json(std::string s)
        : type_(Type::String), str_(std::move(s))
    {}
    Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** Number as an integer; fatal() if not integral. */
    std::int64_t asInt() const;
    /** Integer reinterpreted as unsigned (seeds, cycle counts);
     * fatal() on negative values. */
    std::uint64_t asUnsigned() const;
    const std::string& asString() const;
    const Array& asArray() const;
    const Object& asObject() const;

    /** Object member lookup; nullptr when absent (or not an
     * object). */
    const Json* find(const std::string& key) const;

    /** Mutable object member (creates; fatal if not an object). */
    Json& operator[](const std::string& key);

    /** Serialize compactly (no whitespace, sorted object keys). */
    std::string dump() const;

    /** Parse one JSON document; fatal() on malformed input or
     * trailing garbage. */
    static Json parse(std::string_view text);

  private:
    void dumpTo(std::string& out) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool isInt_ = false;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace serve
} // namespace tempest

#endif // TEMPEST_SERVE_JSON_HH
