#include "serve/result_cache.hh"

namespace tempest
{
namespace serve
{

std::optional<CachedResult>
ResultCache::get(const std::string& key)
{
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    // Refresh recency: splice the entry to the front.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
}

void
ResultCache::put(const std::string& key, CachedResult value)
{
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->value = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
}

CacheStats
ResultCache::stats() const
{
    MutexLock lock(mutex_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = lru_.size();
    s.capacity = capacity_;
    return s;
}

} // namespace serve
} // namespace tempest
