/**
 * @file
 * Per-stage time attribution harness.
 *
 * Runs a representative sweep (the wallclock bench's IQ base +
 * toggling configs over three benchmarks) and prints the profiler
 * breakdown: which pipeline stage or interval-level model the
 * simulator spends its time in. Requires a build configured with
 * -DTEMPEST_PROFILE=ON; otherwise it explains how to get one and
 * exits successfully (so it can live in any build).
 *
 * Environment knobs:
 * - TEMPEST_CYCLES: simulated cycles per run (default 2,000,000)
 */

#include <cstdio>
#include <cstdlib>

#include "common/profiler.hh"
#include "sim/experiment.hh"

int
main()
{
#if !TEMPEST_PROF_ENABLED
    std::printf(
        "bench_profile: profiling is compiled out.\n"
        "Reconfigure with -DTEMPEST_PROFILE=ON to attribute time:\n"
        "  cmake -B build-prof -S . -DTEMPEST_PROFILE=ON\n"
        "  cmake --build build-prof --target bench_profile\n");
    return 0;
#else
    using namespace tempest;

    std::uint64_t cycles = 2'000'000;
    if (const char* env = std::getenv("TEMPEST_CYCLES"))
        cycles = std::strtoull(env, nullptr, 10);

    const char* benchmarks[] = {"art", "facerec", "mesa"};
    Profiler::instance().reset();
    for (const char* b : benchmarks) {
        experiments::runBenchmark(experiments::iqBase(), b, cycles);
        experiments::runBenchmark(experiments::iqToggling(), b,
                                  cycles);
    }

    std::printf("per-stage breakdown over %llu cycles x 6 runs\n",
                static_cast<unsigned long long>(cycles));
    Profiler::instance().report(stdout);
    return 0;
#endif
}
