/**
 * @file
 * Reproduces Table 4: average temperature of the issue-queue
 * halves (tail vs head) for art, facerec and mesa, with and
 * without activity toggling, on the IQ-constrained floorplan.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;
using benchutil::ResultTable;

ResultTable g_results;
const char* const kBenchmarks[] = {"art", "facerec", "mesa"};

std::uint64_t
cycles()
{
    return benchutil::runCycles(16'000'000);
}

void
BM_Table4(benchmark::State& state)
{
    const std::string bench =
        kBenchmarks[state.range(0)];
    const bool toggling = state.range(1) != 0;
    const SimConfig config = toggling ? iqToggling() : iqBase();
    const std::string name = toggling ? "toggling" : "base";
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(name, config, bench, cycles());
        benchutil::setCounters(state, r);
        state.counters["tail_K"] = r.block("IntQ1").avg;
        state.counters["head_K"] = r.block("IntQ0").avg;
    }
    state.SetLabel(bench + "/" + name);
}

void
printTable()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Benchmark", "Technique", "Tail (K)",
                    "Head (K)"});
    char buf[32];
    for (const char* b : kBenchmarks) {
        for (const char* cfg : {"toggling", "base"}) {
            if (!g_results.has(cfg, b))
                continue;
            const SimResult& r = g_results.get(cfg, b);
            std::vector<std::string> row;
            row.push_back(b);
            row.push_back(cfg == std::string("toggling")
                              ? "Activity-toggling"
                              : "Base");
            std::snprintf(buf, sizeof(buf), "%.1f",
                          r.block("IntQ1").avg);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f",
                          r.block("IntQ0").avg);
            row.push_back(buf);
            rows.push_back(row);
        }
    }
    std::printf("\n== Table 4: average temp. of issue-queue "
                "halves (IQ-constrained) ==\n%s\n",
                renderTable(rows).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    benchutil::prefetch(
        g_results,
        {{"base", iqBase()}, {"toggling", iqToggling()}},
        {std::begin(kBenchmarks), std::end(kBenchmarks)},
        cycles());
    for (int b = 0; b < 3; ++b) {
        for (int t = 0; t < 2; ++t) {
            benchmark::RegisterBenchmark("Table4", BM_Table4)
                ->Args({b, t})
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
