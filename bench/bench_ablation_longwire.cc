/**
 * @file
 * Ablation: sweep the long-compaction (wrap-wire) energy from our
 * segmented-driver default up to the paper's Table 3 figure, and
 * measure where activity toggling stops paying (see DESIGN.md's
 * substitution notes).
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

const double kLongWire[] = {0.0123e-9, 0.015e-9, 0.03e-9,
                            0.0687e-9};

benchutil::ResultTable g_results;

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

SimConfig
baseFor(std::size_t i)
{
    SimConfig config = iqBase();
    config.energy.iqLongCompaction = kLongWire[i];
    return config;
}

SimConfig
togglingFor(std::size_t i)
{
    SimConfig config = iqToggling();
    config.energy.iqLongCompaction = kLongWire[i];
    return config;
}

std::string
tagFor(const char* name, std::size_t i)
{
    return name + std::string("#") + std::to_string(i);
}

void
BM_LongWire(benchmark::State& state)
{
    const auto i = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const SimResult& rb = g_results.run(
            tagFor("base", i), baseFor(i), "eon", cycles());
        const SimResult& rt = g_results.run(
            tagFor("toggling", i), togglingFor(i), "eon",
            cycles());
        state.counters["long_nJ"] = kLongWire[i] * 1e9;
        state.counters["base_ipc"] = rb.ipc;
        state.counters["tog_ipc"] = rt.ipc;
        state.counters["speedup_pct"] =
            100.0 * (rt.ipc / rb.ipc - 1.0);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (std::size_t i = 0; i < std::size(kLongWire); ++i) {
            configs.emplace_back(tagFor("base", i), baseFor(i));
            configs.emplace_back(tagFor("toggling", i),
                                 togglingFor(i));
        }
        benchutil::prefetch(g_results, configs, {"eon"},
                            cycles());
    }
    for (std::size_t i = 0; i < std::size(kLongWire); ++i) {
        benchmark::RegisterBenchmark("LongWire", BM_LongWire)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
