/**
 * @file
 * Ablation: sweep the long-compaction (wrap-wire) energy from our
 * segmented-driver default up to the paper's Table 3 figure, and
 * measure where activity toggling stops paying (see DESIGN.md's
 * substitution notes).
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

const double kLongWire[] = {0.0123e-9, 0.015e-9, 0.03e-9,
                            0.0687e-9};

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

void
BM_LongWire(benchmark::State& state)
{
    const double energy =
        kLongWire[static_cast<std::size_t>(state.range(0))];
    SimConfig base = iqBase();
    base.energy.iqLongCompaction = energy;
    SimConfig tog = iqToggling();
    tog.energy.iqLongCompaction = energy;
    for (auto _ : state) {
        const SimResult rb = runBenchmark(base, "eon", cycles());
        const SimResult rt = runBenchmark(tog, "eon", cycles());
        state.counters["long_nJ"] = energy * 1e9;
        state.counters["base_ipc"] = rb.ipc;
        state.counters["tog_ipc"] = rt.ipc;
        state.counters["speedup_pct"] =
            100.0 * (rt.ipc / rb.ipc - 1.0);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    for (std::size_t i = 0; i < std::size(kLongWire); ++i) {
        benchmark::RegisterBenchmark("LongWire", BM_LongWire)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
