/**
 * @file
 * End-to-end wall-clock throughput tracking.
 *
 * Unlike the table/figure benches (which report *simulated*
 * quantities), this binary measures how fast the simulator itself
 * runs: simulated cycles per wall-clock second over a Table-4
 * style sweep (IQ-constrained base + toggling configurations), for
 * both transient thermal solvers and for serial vs 8-thread
 * execution on the parallel runner, plus the CMP engine at 1/2/4
 * cores. Results go to stdout as a table and to
 * BENCH_wallclock.json so perf regressions are visible across
 * commits (see tools/record_bench.py).
 *
 * The serial and threaded sweeps must produce bit-identical
 * simulation results (the runner's core guarantee); this binary
 * re-checks that and fails if they diverge, so the perf numbers
 * can never come from a run that silently changed behaviour.
 *
 * Environment knobs:
 * - TEMPEST_CYCLES: simulated cycles per run (default 2,000,000)
 * - TEMPEST_BENCHMARKS: comma-separated benchmark subset
 * - TEMPEST_SEED: base seed for per-run seed derivation
 * - TEMPEST_SMOKE: set for a fast CI pass (200,000 cycles)
 * - TEMPEST_BENCH_JSON: output path (default BENCH_wallclock.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "sim/cmp/cmp_simulator.hh"
#include "sim/experiment.hh"
#include "sim/fabric/coordinator.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"

namespace tempest
{
namespace
{

struct SweepTiming
{
    std::string solver;
    int threads = 1;
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;
    std::size_t jobs = 0;
    std::vector<ExperimentOutcome> outcomes;

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(simCycles) / wallSeconds
                   : 0.0;
    }
};

std::uint64_t
envU64(const char* name, std::uint64_t fallback)
{
    if (const char* env = std::getenv(name))
        return static_cast<std::uint64_t>(std::atoll(env));
    return fallback;
}

std::vector<std::string>
benchmarkList()
{
    if (const char* env = std::getenv("TEMPEST_BENCHMARKS")) {
        std::vector<std::string> out;
        std::stringstream ss(env);
        std::string item;
        while (std::getline(ss, item, ','))
            out.push_back(item);
        return out;
    }
    return {"art", "facerec", "mesa"}; // the Table 4 bench's set
}

std::vector<std::pair<std::string, SimConfig>>
sweepConfigs(ThermalSolver solver)
{
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"iq_base", experiments::iqBase()},
        {"iq_toggling", experiments::iqToggling()},
    };
    for (auto& [tag, config] : configs)
        config.thermal.solver = solver;
    return configs;
}

SweepTiming
timeSweep(ThermalSolver solver, int threads,
          const std::vector<std::string>& benchmarks,
          std::uint64_t cycles, std::uint64_t base_seed)
{
    SweepTiming t;
    t.solver = solver == ThermalSolver::Expm ? "expm" : "euler";
    t.threads = threads;

    ExperimentRunner::Options options;
    options.threads = threads;
    options.baseSeed = base_seed;

    const auto configs = sweepConfigs(solver);
    const auto start = std::chrono::steady_clock::now();
    t.outcomes = experiments::runSweep(configs, benchmarks, cycles,
                                       options);
    const auto end = std::chrono::steady_clock::now();
    t.wallSeconds =
        std::chrono::duration<double>(end - start).count();

    for (const ExperimentOutcome& o : t.outcomes) {
        if (!o.ok)
            fatal("sweep job ", o.tag, "/", o.benchmark,
                  " failed: ", o.error);
        t.simCycles += o.result.cycles;
    }
    t.jobs = t.outcomes.size();
    return t;
}

/** The runner's serial/parallel bit-identity, re-checked here so a
 * concurrency bug can never masquerade as a speedup. */
void
checkIdentical(const SweepTiming& serial,
               const SweepTiming& threaded)
{
    if (serial.outcomes.size() != threaded.outcomes.size())
        fatal("serial/threaded sweeps ran different job counts");
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        const SimResult& a = serial.outcomes[i].result;
        const SimResult& b = threaded.outcomes[i].result;
        if (a.ipc != b.ipc || a.cycles != b.cycles ||
            a.instructions != b.instructions ||
            a.stallCycles != b.stallCycles) {
            fatal("serial vs ", threaded.threads,
                  "-thread results diverged for job ",
                  serial.outcomes[i].tag, "/",
                  serial.outcomes[i].benchmark);
        }
    }
}

/** Warm-fork vs cold-sweep timing (see DESIGN.md §11). */
struct WarmForkTiming
{
    std::size_t configs = 0;
    std::uint64_t warmupCycles = 0;
    std::uint64_t measureCycles = 0;
    double coldWallSeconds = 0.0;
    double warmWallSeconds = 0.0;     ///< serial warm-fork sweep
    double threadedWallSeconds = 0.0; ///< 8-thread warm-fork sweep

    double
    speedup() const
    {
        return warmWallSeconds > 0
                   ? coldWallSeconds / warmWallSeconds
                   : 0.0;
    }
};

/** Four DTM variants on the IQ-constrained floorplan: warm-fork
 * requires every fork to share the warm-up's geometry, and these
 * differ only in technique flags restoreCheckpoint re-asserts. */
std::vector<std::pair<std::string, SimConfig>>
warmForkConfigs()
{
    auto make = [](bool toggling, bool throttle) {
        SimConfig config = experiments::iqBase();
        config.dtm.iqToggling = toggling;
        config.dtm.fetchThrottling = throttle;
        return config;
    };
    return {
        {"iq_base", make(false, false)},
        {"iq_toggling", make(true, false)},
        {"iq_throttle", make(false, true)},
        {"iq_toggle_throttle", make(true, true)},
    };
}

/**
 * Time the warm-fork path against the cold sweep it replaces: the
 * cold sweep simulates warm-up + measurement in every job; the
 * warm-fork sweep warms each benchmark once and forks the
 * measurement region per config. Serial vs 8-thread fork results
 * are checked bit-identical before any number is reported.
 */
WarmForkTiming
timeWarmFork(const std::vector<std::string>& benchmarks,
             std::uint64_t cycles, std::uint64_t base_seed)
{
    const auto configs = warmForkConfigs();
    WarmForkTiming t;
    t.configs = configs.size();
    t.warmupCycles = cycles / 2;
    t.measureCycles = cycles - t.warmupCycles;

    ExperimentRunner::Options serial_options;
    serial_options.threads = 1;
    serial_options.baseSeed = base_seed;

    experiments::WarmForkOptions warm;
    warm.warmConfig = experiments::iqBase();
    warm.warmupCycles = t.warmupCycles;

    auto timed = [](auto&& fn) {
        const auto start = std::chrono::steady_clock::now();
        auto outcomes = fn();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        for (const ExperimentOutcome& o : outcomes) {
            if (!o.ok)
                fatal("warm-fork bench job ", o.tag, "/",
                      o.benchmark, " failed: ", o.error);
        }
        return std::make_pair(wall, std::move(outcomes));
    };

    auto [cold_wall, cold] = timed([&] {
        return experiments::runSweep(configs, benchmarks, cycles,
                                     serial_options);
    });
    t.coldWallSeconds = cold_wall;

    auto [warm_wall, warm_serial] = timed([&] {
        return experiments::runWarmForkSweep(
            configs, benchmarks, t.measureCycles, warm,
            serial_options);
    });
    t.warmWallSeconds = warm_wall;

    ExperimentRunner::Options threaded_options = serial_options;
    threaded_options.threads = 8;
    auto [threaded_wall, warm_threaded] = timed([&] {
        return experiments::runWarmForkSweep(
            configs, benchmarks, t.measureCycles, warm,
            threaded_options);
    });
    t.threadedWallSeconds = threaded_wall;

    if (warm_serial.size() != warm_threaded.size())
        fatal("warm-fork serial/threaded job counts diverged");
    for (std::size_t i = 0; i < warm_serial.size(); ++i) {
        if (experiments::hashSimResult(warm_serial[i].result) !=
            experiments::hashSimResult(warm_threaded[i].result)) {
            fatal("warm-fork serial vs 8-thread results diverged "
                  "for job ", warm_serial[i].tag, "/",
                  warm_serial[i].benchmark);
        }
    }
    return t;
}

/** Multi-process fabric vs in-process runner (DESIGN.md §15). */
struct FabricTiming
{
    std::size_t jobs = 0;
    std::uint64_t simCycles = 0;
    double inProcessWallSeconds = 0.0;
    /** (workers, wall seconds) per pool size. */
    std::vector<std::pair<int, double>> pools;
};

/** The paper's four DTM variants in the dotted-key vocabulary the
 * fabric ships over the wire (sim_config_io). */
std::vector<std::pair<std::string, Config>>
fabricConfigs()
{
    auto make = [](bool toggling, bool throttle) {
        Config cfg;
        if (toggling)
            cfg.set("dtm.toggling", "true");
        if (throttle)
            cfg.set("dtm.fetch_throttling", "true");
        return cfg;
    };
    return {
        {"iq_base", make(false, false)},
        {"iq_toggling", make(true, false)},
        {"iq_throttle", make(false, true)},
        {"iq_toggle_throttle", make(true, true)},
    };
}

/**
 * Time the sweep fabric at 1/2/8 worker processes against the
 * serial in-process runner on the same job matrix. The workers=1
 * row measures pure coordinator overhead (fork + IPC + result
 * transport); larger pools measure process-level scaling. Every
 * pool's outcome set is checked bit-identical to the in-process
 * reference before any number is reported.
 */
FabricTiming
timeFabric(const std::vector<std::string>& benchmarks,
           std::uint64_t cycles, std::uint64_t base_seed)
{
    fabric::SweepSpec spec;
    spec.configs = fabricConfigs();
    spec.benchmarks = benchmarks;
    spec.measureCycles = cycles;

    std::vector<std::pair<std::string, SimConfig>> sim_configs;
    for (const auto& [tag, config] : spec.configs)
        sim_configs.emplace_back(tag, simConfigFromConfig(config));

    ExperimentRunner::Options serial_options;
    serial_options.threads = 1;
    serial_options.baseSeed = base_seed;

    FabricTiming t;
    auto start = std::chrono::steady_clock::now();
    const auto reference = experiments::runSweep(
        sim_configs, benchmarks, cycles, serial_options);
    t.inProcessWallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    for (const ExperimentOutcome& o : reference) {
        if (!o.ok)
            fatal("fabric bench reference job ", o.tag, "/",
                  o.benchmark, " failed: ", o.error);
        t.simCycles += o.result.cycles;
    }
    t.jobs = reference.size();

    for (const int workers : {1, 2, 8}) {
        fabric::FabricOptions options;
        options.workers = workers;
        options.baseSeed = base_seed;
        fabric::FabricCoordinator coordinator(options);
        start = std::chrono::steady_clock::now();
        const auto outcomes = coordinator.runSweep(spec);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (outcomes.size() != reference.size())
            fatal("fabric sweep at ", workers,
                  " workers ran a different job count");
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (!outcomes[i].ok)
                fatal("fabric bench job ", outcomes[i].tag, "/",
                      outcomes[i].benchmark,
                      " failed: ", outcomes[i].error);
            if (experiments::hashSimResult(outcomes[i].result) !=
                experiments::hashSimResult(reference[i].result)) {
                fatal("fabric sweep at ", workers,
                      " workers diverged from the in-process "
                      "runner for job ", outcomes[i].tag, "/",
                      outcomes[i].benchmark);
            }
        }
        t.pools.emplace_back(workers, wall);
    }
    return t;
}

/** CMP engine throughput at 1/2/4 cores (DESIGN.md §16). */
struct CmpTiming
{
    struct Row
    {
        std::string tag;
        int cores = 0;
        double wallSeconds = 0.0;
        std::uint64_t simCycles = 0; ///< summed over cores
        std::uint64_t hash = 0;
    };
    std::vector<Row> rows;
};

/**
 * Time 1/2/4-core lockstep runs. Hash-gated like every other
 * section: the serial pass and a 3-thread runCmpJobs pass must
 * produce identical result hashes before any number is reported,
 * so a concurrency bug can't masquerade as a speedup. The reported
 * wall times come from the serial pass (one simulator per row, no
 * pool interference).
 */
CmpTiming
timeCmp(std::uint64_t cycles)
{
    const std::vector<std::string> mix = {"art", "mesa", "eon",
                                          "mcf"};
    std::vector<CmpJob> jobs;
    for (const int cores : {1, 2, 4}) {
        CmpJob job;
        job.tag = std::to_string(cores) + "core";
        job.config.base = experiments::iqBase();
        job.config.cores = cores;
        job.config.benchmarks.assign(mix.begin(),
                                     mix.begin() + cores);
        job.config.migration.enabled = cores > 1;
        job.cycles = cycles;
        jobs.push_back(std::move(job));
    }

    const std::vector<CmpJobOutcome> serial = runCmpJobs(jobs, 1);
    const std::vector<CmpJobOutcome> pooled = runCmpJobs(jobs, 3);
    if (serial.size() != pooled.size())
        fatal("cmp bench serial/pooled job counts diverged");

    CmpTiming t;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].hash != pooled[i].hash)
            fatal("cmp bench serial vs 3-thread results diverged "
                  "for job ", serial[i].tag);
        CmpTiming::Row row;
        row.tag = serial[i].tag;
        row.cores = serial[i].result.cores.empty()
                        ? 0
                        : static_cast<int>(
                              serial[i].result.cores.size());
        row.wallSeconds = serial[i].wallSeconds;
        for (const SimResult& c : serial[i].result.cores)
            row.simCycles += c.cycles;
        row.hash = serial[i].hash;
        t.rows.push_back(std::move(row));
    }
    return t;
}

void
writeJson(const std::string& path,
          const std::vector<SweepTiming>& timings,
          const WarmForkTiming& warm_fork,
          const FabricTiming& fabric_timing,
          const CmpTiming& cmp_timing,
          const std::vector<std::string>& benchmarks,
          std::uint64_t cycles)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write ", path);
    std::fprintf(f, "{\n  \"bench\": \"wallclock\",\n");
    std::fprintf(f, "  \"cycles_per_run\": %llu,\n",
                 static_cast<unsigned long long>(cycles));
    // Thread counts above the machine's core count oversubscribe:
    // their rows measure scheduling overhead, not a perf
    // regression. Record the core count so readers (and the perf
    // smoke check) can tell the two apart.
    const unsigned hw_threads =
        std::thread::hardware_concurrency();
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 hw_threads);
    bool oversubscribed = false;
    for (const SweepTiming& t : timings)
        oversubscribed = oversubscribed ||
                         static_cast<unsigned>(t.threads) >
                             hw_threads;
    if (oversubscribed) {
        std::fprintf(
            f,
            "  \"note\": \"thread counts above "
            "hardware_concurrency oversubscribe the machine; "
            "slower multi-thread rows are expected there, not a "
            "regression\",\n");
    }
    std::fprintf(f, "  \"benchmarks\": [");
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                     benchmarks[i].c_str());
    std::fprintf(f, "],\n  \"runs\": [\n");
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const SweepTiming& t = timings[i];
        std::fprintf(
            f,
            "    {\"solver\": \"%s\", \"threads\": %d, "
            "\"jobs\": %zu, \"wall_seconds\": %.4f, "
            "\"sim_cycles\": %llu, "
            "\"sim_cycles_per_second\": %.0f}%s\n",
            t.solver.c_str(), t.threads, t.jobs, t.wallSeconds,
            static_cast<unsigned long long>(t.simCycles),
            t.cyclesPerSecond(),
            i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"warm_fork\": {\"configs\": %zu, "
        "\"warmup_cycles\": %llu, \"measure_cycles\": %llu, "
        "\"cold_wall_seconds\": %.4f, "
        "\"warm_wall_seconds\": %.4f, "
        "\"threaded_wall_seconds\": %.4f, "
        "\"speedup\": %.3f},\n",
        warm_fork.configs,
        static_cast<unsigned long long>(warm_fork.warmupCycles),
        static_cast<unsigned long long>(warm_fork.measureCycles),
        warm_fork.coldWallSeconds, warm_fork.warmWallSeconds,
        warm_fork.threadedWallSeconds, warm_fork.speedup());
    // Worker-process rows, like thread rows, depend on the
    // machine's core count; perf_smoke.py treats them as
    // advisory-only.
    std::fprintf(f, "  \"fabric\": {\"jobs\": %zu, "
                    "\"sim_cycles\": %llu, "
                    "\"in_process_wall_seconds\": %.4f, "
                    "\"pools\": [\n",
                 fabric_timing.jobs,
                 static_cast<unsigned long long>(
                     fabric_timing.simCycles),
                 fabric_timing.inProcessWallSeconds);
    for (std::size_t i = 0; i < fabric_timing.pools.size(); ++i) {
        const auto& [workers, wall] = fabric_timing.pools[i];
        const double rate =
            wall > 0
                ? static_cast<double>(fabric_timing.simCycles) /
                      wall
                : 0.0;
        std::fprintf(f,
                     "    {\"workers\": %d, "
                     "\"wall_seconds\": %.4f, "
                     "\"sim_cycles_per_second\": %.0f}%s\n",
                     workers, wall, rate,
                     i + 1 < fabric_timing.pools.size() ? ","
                                                        : "");
    }
    std::fprintf(f, "  ]},\n");
    // CMP rows: lockstep N-core throughput. sim_cycles sums every
    // core's clock, so per-core slowdown vs the 1-core row is the
    // shared-network solve cost, not a unit mismatch.
    std::fprintf(f, "  \"cmp\": [\n");
    for (std::size_t i = 0; i < cmp_timing.rows.size(); ++i) {
        const CmpTiming::Row& row = cmp_timing.rows[i];
        const double rate =
            row.wallSeconds > 0
                ? static_cast<double>(row.simCycles) /
                      row.wallSeconds
                : 0.0;
        std::fprintf(f,
                     "    {\"tag\": \"%s\", \"cores\": %d, "
                     "\"wall_seconds\": %.4f, "
                     "\"sim_cycles\": %llu, "
                     "\"sim_cycles_per_second\": %.0f, "
                     "\"result_hash\": \"0x%016llx\"}%s\n",
                     row.tag.c_str(), row.cores, row.wallSeconds,
                     static_cast<unsigned long long>(
                         row.simCycles),
                     rate,
                     static_cast<unsigned long long>(row.hash),
                     i + 1 < cmp_timing.rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

int
run()
{
    const bool smoke = std::getenv("TEMPEST_SMOKE") != nullptr;
    const std::uint64_t cycles =
        envU64("TEMPEST_CYCLES", smoke ? 200'000 : 2'000'000);
    const std::uint64_t base_seed = envU64("TEMPEST_SEED", 1);
    const std::vector<std::string> benchmarks = benchmarkList();

    std::vector<SweepTiming> timings;
    for (const ThermalSolver solver :
         {ThermalSolver::Expm, ThermalSolver::Euler}) {
        SweepTiming serial =
            timeSweep(solver, 1, benchmarks, cycles, base_seed);
        SweepTiming threaded =
            timeSweep(solver, 8, benchmarks, cycles, base_seed);
        checkIdentical(serial, threaded);
        timings.push_back(std::move(serial));
        timings.push_back(std::move(threaded));
    }

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"solver", "threads", "jobs", "wall s",
                    "Mcycles/s"});
    char buf[64];
    for (const SweepTiming& t : timings) {
        std::vector<std::string> row;
        row.push_back(t.solver);
        row.push_back(std::to_string(t.threads));
        row.push_back(std::to_string(t.jobs));
        std::snprintf(buf, sizeof(buf), "%.2f", t.wallSeconds);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2f",
                      t.cyclesPerSecond() / 1e6);
        row.push_back(buf);
        rows.push_back(std::move(row));
    }
    std::printf("%s", experiments::renderTable(rows).c_str());

    const double expm = timings[0].cyclesPerSecond();
    const double euler = timings[2].cyclesPerSecond();
    if (euler > 0)
        std::printf("serial expm/euler throughput ratio: %.2fx\n",
                    expm / euler);

    const WarmForkTiming warm_fork =
        timeWarmFork(benchmarks, cycles, base_seed);
    std::printf(
        "warm-fork sweep (%zu configs, %llu warm-up + %llu "
        "measure cycles): cold %.2fs, warm-fork %.2fs serial "
        "(%.2fx), %.2fs at 8 threads\n",
        warm_fork.configs,
        static_cast<unsigned long long>(warm_fork.warmupCycles),
        static_cast<unsigned long long>(warm_fork.measureCycles),
        warm_fork.coldWallSeconds, warm_fork.warmWallSeconds,
        warm_fork.speedup(), warm_fork.threadedWallSeconds);

    const FabricTiming fabric_timing =
        timeFabric(benchmarks, cycles, base_seed);
    std::printf("fabric sweep (%zu jobs, in-process %.2fs):",
                fabric_timing.jobs,
                fabric_timing.inProcessWallSeconds);
    for (const auto& [workers, wall] : fabric_timing.pools)
        std::printf(" %dw %.2fs", workers, wall);
    if (!fabric_timing.pools.empty() &&
        fabric_timing.inProcessWallSeconds > 0) {
        std::printf(
            " (1-worker overhead %.1f%%)",
            (fabric_timing.pools.front().second /
                 fabric_timing.inProcessWallSeconds -
             1.0) *
                100.0);
    }
    std::printf("\n");

    const CmpTiming cmp_timing = timeCmp(cycles);
    std::printf("cmp engine:");
    for (const CmpTiming::Row& row : cmp_timing.rows) {
        const double rate =
            row.wallSeconds > 0
                ? row.simCycles / row.wallSeconds / 1e6
                : 0.0;
        std::printf(" %s %.2fs (%.2f Mcycles/s)", row.tag.c_str(),
                    row.wallSeconds, rate);
    }
    std::printf("\n");

    const char* json = std::getenv("TEMPEST_BENCH_JSON");
    writeJson(json ? json : "BENCH_wallclock.json", timings,
              warm_fork, fabric_timing, cmp_timing, benchmarks,
              cycles);
    return 0;
}

} // namespace
} // namespace tempest

int
main()
{
    return tempest::run();
}
