/**
 * @file
 * Reproduces Figure 7: IPC for all 22 benchmarks under ideal
 * round-robin, fine-grain turnoff, and base, on the
 * ALU-constrained floorplan.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

benchutil::ResultTable g_results;
std::vector<std::string> g_benchmarks;
const char* const kConfigs[] = {"round-robin", "fine-grain",
                                "base"};

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

SimConfig
configFor(int idx)
{
    switch (idx) {
      case 0: return aluRoundRobin();
      case 1: return aluFineGrain();
      default: return aluBase();
    }
}

void
BM_Fig7(benchmark::State& state)
{
    const std::string bench =
        g_benchmarks[static_cast<std::size_t>(state.range(0))];
    const int cfg = static_cast<int>(state.range(1));
    for (auto _ : state) {
        const SimResult& r = g_results.run(
            kConfigs[cfg], configFor(cfg), bench, cycles());
        benchutil::setCounters(state, r);
        state.counters["turnoffs"] = static_cast<double>(
            r.dtm.aluTurnoffEvents + r.dtm.fpAdderTurnoffEvents);
    }
    state.SetLabel(bench + std::string("/") + kConfigs[cfg]);
}

void
printFigure()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Benchmark", "RR IPC", "FG IPC", "Base IPC",
                    "FG vs base %", "RR vs FG %"});
    char buf[32];
    std::vector<double> base, fg, rr, base_c, fg_c;
    for (const auto& b : g_benchmarks) {
        const SimResult& r_rr = g_results.get("round-robin", b);
        const SimResult& r_fg = g_results.get("fine-grain", b);
        const SimResult& r_b = g_results.get("base", b);
        std::vector<std::string> row{b};
        for (double v : {r_rr.ipc, r_fg.ipc, r_b.ipc}) {
            std::snprintf(buf, sizeof(buf), "%.2f", v);
            row.push_back(buf);
        }
        std::snprintf(buf, sizeof(buf), "%+.1f",
                      100.0 * (r_fg.ipc / r_b.ipc - 1.0));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%+.1f",
                      100.0 * (r_rr.ipc / r_fg.ipc - 1.0));
        row.push_back(buf);
        rows.push_back(row);
        base.push_back(r_b.ipc);
        fg.push_back(r_fg.ipc);
        rr.push_back(r_rr.ipc);
        if (r_b.dtm.globalStalls > 0) {
            base_c.push_back(r_b.ipc);
            fg_c.push_back(r_fg.ipc);
        }
    }
    std::printf("\n== Figure 7: ALU-constrained IPC ==\n%s\n",
                renderTable(rows).c_str());
    std::printf("fine-grain turnoff vs base, all %zu benchmarks: "
                "%+.1f%%\n",
                base.size(),
                benchutil::averageSpeedup(base, fg));
    std::printf("fine-grain turnoff vs base, %zu ALU-constrained "
                "benchmarks: %+.1f%%\n",
                base_c.size(),
                benchutil::averageSpeedup(base_c, fg_c));
    std::printf("round-robin vs fine-grain, all benchmarks: "
                "%+.1f%%\n",
                benchutil::averageSpeedup(fg, rr));
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    g_benchmarks = benchutil::benchmarkList();
    benchutil::prefetch(g_results,
                        {{"round-robin", aluRoundRobin()},
                         {"fine-grain", aluFineGrain()},
                         {"base", aluBase()}},
                        g_benchmarks, cycles());
    for (std::size_t b = 0; b < g_benchmarks.size(); ++b) {
        for (int c = 0; c < 3; ++c) {
            benchmark::RegisterBenchmark("Fig7", BM_Fig7)
                ->Args({static_cast<long>(b), c})
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
