/**
 * @file
 * Ablation: sweep the activity-toggling differential threshold
 * (the paper fixes it at 0.5 K) and the proximity gate, on a
 * representative constrained benchmark.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

const double kDeltas[] = {0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
const double kProximities[] = {1.0, 3.0, 1e9};

benchutil::ResultTable g_results;

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

SimConfig
deltaConfig(std::size_t i)
{
    SimConfig config = iqToggling();
    config.dtm.toggleDeltaK = kDeltas[i];
    return config;
}

SimConfig
proximityConfig(std::size_t i)
{
    SimConfig config = iqToggling();
    config.dtm.toggleProximityK = kProximities[i];
    return config;
}

std::string
tagFor(const char* name, std::size_t i)
{
    return name + std::string("#") + std::to_string(i);
}

void
BM_ToggleDelta(benchmark::State& state)
{
    const auto i = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(tagFor("delta", i), deltaConfig(i),
                          "perlbmk", cycles());
        benchutil::setCounters(state, r);
        state.counters["toggles"] =
            static_cast<double>(r.dtm.iqToggles);
        state.counters["delta_K"] = kDeltas[i];
    }
}

void
BM_ToggleProximity(benchmark::State& state)
{
    const auto i = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const SimResult& r = g_results.run(
            tagFor("proximity", i), proximityConfig(i),
            "perlbmk", cycles());
        benchutil::setCounters(state, r);
        state.counters["toggles"] =
            static_cast<double>(r.dtm.iqToggles);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (std::size_t i = 0; i < std::size(kDeltas); ++i) {
            configs.emplace_back(tagFor("delta", i),
                                 deltaConfig(i));
        }
        for (std::size_t i = 0; i < std::size(kProximities);
             ++i) {
            configs.emplace_back(tagFor("proximity", i),
                                 proximityConfig(i));
        }
        benchutil::prefetch(g_results, configs, {"perlbmk"},
                            cycles());
    }
    for (std::size_t i = 0; i < std::size(kDeltas); ++i) {
        benchmark::RegisterBenchmark("ToggleDelta",
                                     BM_ToggleDelta)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    for (std::size_t i = 0; i < std::size(kProximities); ++i) {
        benchmark::RegisterBenchmark("ToggleProximity",
                                     BM_ToggleProximity)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
