/**
 * @file
 * Reproduces Table 6: IPC and register-file copy temperatures for
 * eon under the four mapping/turnoff combinations, plus the
 * §4.3 turnoff-count comparison (priority mapping turns copies
 * off more often yet achieves higher IPC).
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

benchutil::ResultTable g_results;

struct Combo
{
    const char* name;
    PortMapping mapping;
    bool fineGrain;
};

const Combo kCombos[] = {
    {"priority+fine-grain", PortMapping::Priority, true},
    {"balanced+fine-grain", PortMapping::Balanced, true},
    {"balanced-only", PortMapping::Balanced, false},
    {"priority-only", PortMapping::Priority, false},
};

std::uint64_t
cycles()
{
    return benchutil::runCycles(16'000'000);
}

void
BM_Table6(benchmark::State& state)
{
    const Combo& combo = kCombos[state.range(0)];
    const SimConfig config =
        regfileConfig(combo.mapping, combo.fineGrain);
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(combo.name, config, "eon", cycles());
        benchutil::setCounters(state, r);
        state.counters["copy0_K"] = r.block("IntReg0").avg;
        state.counters["copy1_K"] = r.block("IntReg1").avg;
        state.counters["turnoffs"] =
            static_cast<double>(r.dtm.regfileTurnoffEvents);
    }
    state.SetLabel(combo.name);
}

void
printTable()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Technique", "IPC", "Copy 0 (K)",
                    "Copy 1 (K)", "Turnoffs"});
    char buf[32];
    for (const Combo& combo : kCombos) {
        const SimResult& r = g_results.get(combo.name, "eon");
        std::vector<std::string> row{combo.name};
        std::snprintf(buf, sizeof(buf), "%.1f", r.ipc);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      r.block("IntReg0").avg);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      r.block("IntReg1").avg);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          r.dtm.regfileTurnoffEvents));
        row.push_back(buf);
        rows.push_back(row);
    }
    std::printf("\n== Table 6: register-file copy temperatures "
                "for eon (regfile-constrained) ==\n%s\n",
                renderTable(rows).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (const Combo& combo : kCombos) {
            configs.emplace_back(
                combo.name,
                regfileConfig(combo.mapping, combo.fineGrain));
        }
        benchutil::prefetch(g_results, configs, {"eon"},
                            cycles());
    }
    for (int c = 0; c < 4; ++c) {
        benchmark::RegisterBenchmark("Table6", BM_Table6)
            ->Arg(c)
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
