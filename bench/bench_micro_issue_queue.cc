/**
 * @file
 * Microbenchmarks for the issue queue and the whole core: cost of
 * compaction accounting per cycle and end-to-end simulation rate.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "uarch/core.hh"

namespace
{

using namespace tempest;

void
BM_CompactionCycle(benchmark::State& state)
{
    IssueQueue iq(32, 6, QueueKind::Int);
    ActivityRecord act;
    Rng rng(1);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        iq.compactStep(act);
        int grants = 0;
        iq.forEachReadyInPriorityOrder(
            [&](int phys, const IqEntry&) {
                if (grants < 3) {
                    iq.markIssued(phys, act);
                    ++grants;
                }
                return grants < 3;
            });
        while (iq.canDispatch() && iq.count() < 28) {
            IqEntry e;
            e.seq = ++seq;
            iq.dispatch(e, act);
        }
        benchmark::DoNotOptimize(act.iqEntryMoves[0][1]);
    }
}
BENCHMARK(BM_CompactionCycle);

void
BM_CoreTick(benchmark::State& state)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("eon"), 1);
    ActivityRecord act;
    for (auto _ : state)
        core.tick(act);
    state.counters["ipc"] = core.ipc();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.cycle()));
}
BENCHMARK(BM_CoreTick);

void
BM_CoreTickMemoryBound(benchmark::State& state)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("mcf"), 1);
    ActivityRecord act;
    for (auto _ : state)
        core.tick(act);
    state.counters["ipc"] = core.ipc();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.cycle()));
}
BENCHMARK(BM_CoreTickMemoryBound);

} // namespace

BENCHMARK_MAIN();
