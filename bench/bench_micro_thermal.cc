/**
 * @file
 * Microbenchmarks for the thermal solvers: per-interval transient
 * stepping cost and the dense steady-state solve.
 */

#include <benchmark/benchmark.h>

#include "thermal/rc_model.hh"
#include "thermal/sensor.hh"

namespace
{

using namespace tempest;

void
BM_TransientStep(benchmark::State& state)
{
    ThermalParams params;
    params.timeScale = 0.04;
    RcModel rc(
        Floorplan::ev6Like(FloorplanVariant::IqConstrained),
        params);
    for (int b = 0; b < rc.numBlocks(); ++b)
        rc.setPower(b, 0.5);
    const Seconds dt = 50000 / 4.2e9; // one sampling interval
    for (auto _ : state) {
        rc.step(dt);
        benchmark::DoNotOptimize(rc.temperature(0));
    }
}
BENCHMARK(BM_TransientStep);

void
BM_SteadyStateSolve(benchmark::State& state)
{
    ThermalParams params;
    RcModel rc(
        Floorplan::ev6Like(FloorplanVariant::Baseline), params);
    for (int b = 0; b < rc.numBlocks(); ++b)
        rc.setPower(b, 0.4);
    for (auto _ : state) {
        rc.solveSteadyState();
        benchmark::DoNotOptimize(rc.temperature(0));
    }
}
BENCHMARK(BM_SteadyStateSolve);

void
BM_SensorSweep(benchmark::State& state)
{
    ThermalParams params;
    RcModel rc(
        Floorplan::ev6Like(FloorplanVariant::Baseline), params);
    SensorBank sensors(rc);
    for (auto _ : state) {
        auto temps = sensors.readAll();
        benchmark::DoNotOptimize(temps.data());
    }
}
BENCHMARK(BM_SensorSweep);

} // namespace

BENCHMARK_MAIN();
