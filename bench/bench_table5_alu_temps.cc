/**
 * @file
 * Reproduces Table 5: IPC and per-ALU average temperatures for
 * parser (not ALU-constrained) and perlbmk (constrained) under
 * round-robin (ideal), fine-grain turnoff, and base, on the
 * ALU-constrained floorplan.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

benchutil::ResultTable g_results;
const char* const kBenchmarks[] = {"parser", "perlbmk"};
const char* const kConfigs[] = {"round-robin", "fine-grain",
                                "base"};

std::uint64_t
cycles()
{
    return benchutil::runCycles(16'000'000);
}

SimConfig
configFor(int idx)
{
    switch (idx) {
      case 0: return aluRoundRobin();
      case 1: return aluFineGrain();
      default: return aluBase();
    }
}

void
BM_Table5(benchmark::State& state)
{
    const std::string bench = kBenchmarks[state.range(0)];
    const int cfg = static_cast<int>(state.range(1));
    for (auto _ : state) {
        const SimResult& r = g_results.run(
            kConfigs[cfg], configFor(cfg), bench, cycles());
        benchutil::setCounters(state, r);
        state.counters["alu0_K"] = r.block("IntExec0").avg;
        state.counters["alu5_K"] = r.block("IntExec5").avg;
    }
    state.SetLabel(bench + std::string("/") + kConfigs[cfg]);
}

void
printTable()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Benchmark", "Technique", "IPC", "ALU0 (K)",
                    "ALU1 (K)", "ALU2 (K)", "ALU3 (K)",
                    "ALU4 (K)", "ALU5 (K)"});
    char buf[32];
    for (const char* b : kBenchmarks) {
        for (const char* cfg : kConfigs) {
            const SimResult& r = g_results.get(cfg, b);
            std::vector<std::string> row{b, cfg};
            std::snprintf(buf, sizeof(buf), "%.1f", r.ipc);
            row.push_back(buf);
            for (int a = 0; a < 6; ++a) {
                std::snprintf(
                    buf, sizeof(buf), "%.1f",
                    r.block("IntExec" + std::to_string(a)).avg);
                row.push_back(buf);
            }
            rows.push_back(row);
        }
    }
    std::printf("\n== Table 5: average integer-ALU temperatures "
                "(ALU-constrained) ==\n%s\n",
                renderTable(rows).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    benchutil::prefetch(
        g_results,
        {{"round-robin", aluRoundRobin()},
         {"fine-grain", aluFineGrain()},
         {"base", aluBase()}},
        {std::begin(kBenchmarks), std::end(kBenchmarks)},
        cycles());
    for (int b = 0; b < 2; ++b) {
        for (int c = 0; c < 3; ++c) {
            benchmark::RegisterBenchmark("Table5", BM_Table5)
                ->Args({b, c})
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
