/**
 * @file
 * Reproduces Figure 8: IPC for all 22 benchmarks under the four
 * register-file configurations (priority/balanced mapping, with
 * and without fine-grain copy turnoff) on the regfile-constrained
 * floorplan, plus the §4.3 suite averages.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

benchutil::ResultTable g_results;
std::vector<std::string> g_benchmarks;

struct Combo
{
    const char* name;
    PortMapping mapping;
    bool fineGrain;
};

const Combo kCombos[] = {
    {"priority+FG", PortMapping::Priority, true},
    {"balanced+FG", PortMapping::Balanced, true},
    {"balanced-only", PortMapping::Balanced, false},
    {"priority-only", PortMapping::Priority, false},
};

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

void
BM_Fig8(benchmark::State& state)
{
    const std::string bench =
        g_benchmarks[static_cast<std::size_t>(state.range(0))];
    const Combo& combo = kCombos[state.range(1)];
    const SimConfig config =
        regfileConfig(combo.mapping, combo.fineGrain);
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(combo.name, config, bench, cycles());
        benchutil::setCounters(state, r);
    }
    state.SetLabel(bench + std::string("/") + combo.name);
}

void
printFigure()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Benchmark", "prio+FG", "bal+FG",
                    "bal-only", "prio-only"});
    char buf[32];
    std::vector<double> pf, bf, bo, po, pf_c, bo_c, po_c;
    std::vector<double> bf_c;
    for (const auto& b : g_benchmarks) {
        const double v_pf = g_results.get("priority+FG", b).ipc;
        const double v_bf = g_results.get("balanced+FG", b).ipc;
        const double v_bo = g_results.get("balanced-only", b).ipc;
        const double v_po = g_results.get("priority-only", b).ipc;
        std::vector<std::string> row{b};
        for (double v : {v_pf, v_bf, v_bo, v_po}) {
            std::snprintf(buf, sizeof(buf), "%.2f", v);
            row.push_back(buf);
        }
        rows.push_back(row);
        pf.push_back(v_pf);
        bf.push_back(v_bf);
        bo.push_back(v_bo);
        po.push_back(v_po);
        if (g_results.get("priority-only", b).dtm.globalStalls >
            0) {
            pf_c.push_back(v_pf);
            bf_c.push_back(v_bf);
            bo_c.push_back(v_bo);
            po_c.push_back(v_po);
        }
    }
    std::printf("\n== Figure 8: regfile-constrained IPC, four "
                "configurations ==\n%s\n",
                renderTable(rows).c_str());
    std::printf(
        "balanced-only vs priority-only: all %+.1f%%, "
        "constrained %+.1f%% (%zu benchmarks)\n",
        benchutil::averageSpeedup(po, bo),
        benchutil::averageSpeedup(po_c, bo_c), po_c.size());
    std::printf("priority+FG vs priority-only: all %+.1f%%, "
                "constrained %+.1f%%\n",
                benchutil::averageSpeedup(po, pf),
                benchutil::averageSpeedup(po_c, pf_c));
    std::printf("priority+FG vs balanced-only: all %+.1f%%, "
                "constrained %+.1f%%\n",
                benchutil::averageSpeedup(bo, pf),
                benchutil::averageSpeedup(bo_c, pf_c));
    std::printf("priority+FG vs balanced+FG: all %+.1f%%, "
                "constrained %+.1f%%\n",
                benchutil::averageSpeedup(bf, pf),
                benchutil::averageSpeedup(bf_c, pf_c));
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    g_benchmarks = benchutil::benchmarkList();
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (const Combo& combo : kCombos) {
            configs.emplace_back(
                combo.name,
                regfileConfig(combo.mapping, combo.fineGrain));
        }
        benchutil::prefetch(g_results, configs, g_benchmarks,
                            cycles());
    }
    for (std::size_t b = 0; b < g_benchmarks.size(); ++b) {
        for (int c = 0; c < 4; ++c) {
            benchmark::RegisterBenchmark("Fig8", BM_Fig8)
                ->Args({static_cast<long>(b), c})
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
