/**
 * @file
 * Serving-layer overhead benchmarks for tempest_serve.
 *
 * The daemon's value proposition is that a cache hit costs
 * microseconds while a cold simulation costs seconds, so the
 * serving layer itself (JSON codec, canonical identity, LRU
 * cache, token bucket, socket round-trip) must stay far below
 * the simulation in the profile. These benchmarks pin down each
 * per-request cost in isolation, plus the full daemon round-trip
 * for the two cheap ops (ping, cached run) over a real socket.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "serve/throttler.hh"

namespace tempest
{
namespace serve
{
namespace
{

const char* const kRunLine =
    R"({"op":"run","benchmark":"eon","cycles":2000000,)"
    R"("seed":7,"client":"bench",)"
    R"("config":{"dtm.toggling":"true",)"
    R"("dtm.mapping":"balanced",)"
    R"("thermal.ambient":"318.15"}})";

void
BM_JsonParseRequestLine(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(Json::parse(kRunLine));
    }
}
BENCHMARK(BM_JsonParseRequestLine);

void
BM_JsonDumpReply(benchmark::State& state)
{
    Json reply;
    reply["ok"] = Json(true);
    reply["op"] = Json("run");
    reply["benchmark"] = Json("eon");
    reply["result_hash"] = Json(hexU64(0x123456789abcdef0ull));
    reply["ipc"] = Json(1.234567);
    reply["cycles"] = Json(std::uint64_t{2'000'000});
    reply["cached"] = Json(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reply.dump());
    }
}
BENCHMARK(BM_JsonDumpReply);

void
BM_ParseAndCanonicalIdentity(benchmark::State& state)
{
    for (auto _ : state) {
        const Request req = parseRequest(kRunLine);
        benchmark::DoNotOptimize(canonicalRunIdentity(req));
    }
}
BENCHMARK(BM_ParseAndCanonicalIdentity);

void
BM_ResultCacheHit(benchmark::State& state)
{
    ResultCache cache(512);
    const Request req = parseRequest(kRunLine);
    const std::string key = canonicalRunIdentity(req);
    CachedResult r;
    r.resultHash = 42;
    cache.put(key, r);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(key));
    }
}
BENCHMARK(BM_ResultCacheHit);

void
BM_ResultCacheChurn(benchmark::State& state)
{
    // Steady-state eviction: every put displaces the LRU entry.
    ResultCache cache(64);
    CachedResult r;
    r.resultHash = 42;
    std::uint64_t i = 0;
    for (auto _ : state) {
        cache.put("key" + std::to_string(i++ % 128), r);
    }
}
BENCHMARK(BM_ResultCacheChurn);

void
BM_ThrottlerAdmit(benchmark::State& state)
{
    ClientThrottler throttler(/*rate=*/1e9, /*burst=*/1e9);
    double now = 0;
    for (auto _ : state) {
        now += 1e-6;
        benchmark::DoNotOptimize(
            throttler.acquire("bench-client", now));
    }
}
BENCHMARK(BM_ThrottlerAdmit);

/** Blocking round trip of one line over a connected socket. */
std::string
roundTrip(int fd, const std::string& line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd, framed.data() + sent,
                                 framed.size() - sent, 0);
        if (n <= 0)
            return {};
        sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n')
        reply.push_back(c);
    return reply;
}

/** Daemon + connected client shared across iterations. */
class DaemonFixture : public benchmark::Fixture
{
  public:
    void
    SetUp(benchmark::State&) override
    {
        if (daemon_)
            return;
        socketPath_ = "/tmp/tempest_bench_" +
                      std::to_string(::getpid()) + ".sock";
        ServeOptions options;
        options.socketPath = socketPath_;
        options.threads = 1;
        daemon_ = new ServeDaemon(options);
        daemon_->start();

        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path),
                      "%s", socketPath_.c_str());
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr));
        // Prime the cache so the run benchmark measures the hit
        // path, not a simulation.
        warmLine_ =
            R"({"op":"run","benchmark":"eon",)"
            R"("cycles":50000,"seed":7})";
        roundTrip(fd_, warmLine_);
    }

    void
    TearDown(benchmark::State&) override
    {
        // Torn down once at process exit; google-benchmark calls
        // SetUp/TearDown per run, so keep the daemon alive.
    }

  protected:
    static ServeDaemon* daemon_;
    static int fd_;
    static std::string socketPath_;
    static std::string warmLine_;
};

ServeDaemon* DaemonFixture::daemon_ = nullptr;
int DaemonFixture::fd_ = -1;
std::string DaemonFixture::socketPath_;
std::string DaemonFixture::warmLine_;

BENCHMARK_F(DaemonFixture, PingRoundTrip)
(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            roundTrip(fd_, R"({"op":"ping"})"));
    }
}

BENCHMARK_F(DaemonFixture, CachedRunRoundTrip)
(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(roundTrip(fd_, warmLine_));
    }
}

BENCHMARK_F(DaemonFixture, StatsRoundTrip)
(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            roundTrip(fd_, R"({"op":"stats"})"));
    }
}

} // namespace
} // namespace serve
} // namespace tempest

BENCHMARK_MAIN();
