/**
 * @file
 * Reproduces Figure 6: IPC with and without activity toggling for
 * all 22 benchmarks on the IQ-constrained floorplan, plus the
 * toggle-count statistics quoted in §4.1 (toggles are infrequent;
 * frequency does not correlate with speedup).
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

benchutil::ResultTable g_results;
std::vector<std::string> g_benchmarks;

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

void
BM_Fig6(benchmark::State& state)
{
    const std::string bench =
        g_benchmarks[static_cast<std::size_t>(state.range(0))];
    const bool toggling = state.range(1) != 0;
    const SimConfig config = toggling ? iqToggling() : iqBase();
    const std::string name = toggling ? "toggling" : "base";
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(name, config, bench, cycles());
        benchutil::setCounters(state, r);
        state.counters["toggles"] =
            static_cast<double>(r.dtm.iqToggles);
    }
    state.SetLabel(bench + "/" + name);
}

void
printFigure()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Benchmark", "Base IPC", "Toggling IPC",
                    "Speedup %", "Toggles", "BaseStall%"});
    char buf[32];
    std::vector<double> base_ipc, tog_ipc;
    std::vector<double> base_c, tog_c; // constrained subset
    for (const auto& b : g_benchmarks) {
        const SimResult& base = g_results.get("base", b);
        const SimResult& tog = g_results.get("toggling", b);
        std::vector<std::string> row{b};
        std::snprintf(buf, sizeof(buf), "%.2f", base.ipc);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2f", tog.ipc);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%+.1f",
                      100.0 * (tog.ipc / base.ipc - 1.0));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          tog.dtm.iqToggles));
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      100.0 * base.stallCycles / base.cycles);
        row.push_back(buf);
        rows.push_back(row);
        base_ipc.push_back(base.ipc);
        tog_ipc.push_back(tog.ipc);
        if (base.dtm.globalStalls > 0) {
            base_c.push_back(base.ipc);
            tog_c.push_back(tog.ipc);
        }
    }
    std::printf("\n== Figure 6: IQ-constrained IPC, activity "
                "toggling vs base ==\n%s\n",
                renderTable(rows).c_str());
    std::printf("average speedup, all %zu benchmarks: %+.1f%%\n",
                base_ipc.size(),
                benchutil::averageSpeedup(base_ipc, tog_ipc));
    std::printf("average speedup, %zu issue-queue-constrained "
                "benchmarks: %+.1f%%\n",
                base_c.size(),
                benchutil::averageSpeedup(base_c, tog_c));
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    g_benchmarks = benchutil::benchmarkList();
    benchutil::prefetch(g_results,
                        {{"base", iqBase()},
                         {"toggling", iqToggling()}},
                        g_benchmarks, cycles());
    for (std::size_t b = 0; b < g_benchmarks.size(); ++b) {
        for (int t = 0; t < 2; ++t) {
            benchmark::RegisterBenchmark("Fig6", BM_Fig6)
                ->Args({static_cast<long>(b), t})
                ->Iterations(1)
                ->Unit(benchmark::kSecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFigure();
    return 0;
}
