/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures: it runs the relevant simulations once per
 * (configuration, benchmark) pair, reports IPC and thermal
 * counters through google-benchmark, and prints the paper-style
 * rows (and suite averages) after the sweep.
 *
 * Environment knobs:
 * - TEMPEST_CYCLES: simulated cycles per run (default below)
 * - TEMPEST_BENCHMARKS: comma-separated benchmark subset
 */

#ifndef TEMPEST_BENCH_BENCH_UTIL_HH
#define TEMPEST_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"

namespace tempest
{
namespace benchutil
{

/** Cycles per simulation, overridable via TEMPEST_CYCLES. */
inline std::uint64_t
runCycles(std::uint64_t fallback = 8'000'000)
{
    if (const char* env = std::getenv("TEMPEST_CYCLES"))
        return static_cast<std::uint64_t>(std::atoll(env));
    return fallback;
}

/** Benchmark list, overridable via TEMPEST_BENCHMARKS. */
inline std::vector<std::string>
benchmarkList()
{
    if (const char* env = std::getenv("TEMPEST_BENCHMARKS")) {
        std::vector<std::string> out;
        std::stringstream ss(env);
        std::string item;
        while (std::getline(ss, item, ','))
            out.push_back(item);
        return out;
    }
    return spec2000Names();
}

/** Result cache so summary rows reuse the measured runs. */
class ResultTable
{
  public:
    SimResult&
    run(const std::string& config_name, const SimConfig& config,
        const std::string& benchmark, std::uint64_t cycles)
    {
        const std::string key = config_name + "/" + benchmark;
        auto it = results_.find(key);
        if (it == results_.end()) {
            it = results_
                     .emplace(key,
                              experiments::runBenchmark(
                                  config, benchmark, cycles))
                     .first;
        }
        return it->second;
    }

    bool
    has(const std::string& config_name,
        const std::string& benchmark) const
    {
        return results_.count(config_name + "/" + benchmark) != 0;
    }

    const SimResult&
    get(const std::string& config_name,
        const std::string& benchmark) const
    {
        auto it = results_.find(config_name + "/" + benchmark);
        if (it == results_.end())
            fatal("missing result ", config_name, "/", benchmark);
        return it->second;
    }

  private:
    std::map<std::string, SimResult> results_;
};

/** Attach the standard counters to a benchmark state. */
inline void
setCounters(benchmark::State& state, const SimResult& r)
{
    state.counters["ipc"] = r.ipc;
    state.counters["stall_frac"] =
        r.cycles ? static_cast<double>(r.stallCycles) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    state.counters["stalls"] =
        static_cast<double>(r.dtm.globalStalls);
}

/** Arithmetic-mean percent speedup over paired result sets. */
inline double
averageSpeedup(const std::vector<double>& base,
               const std::vector<double>& improved)
{
    double sum = 0;
    for (std::size_t i = 0; i < base.size(); ++i)
        sum += 100.0 * (improved[i] / base[i] - 1.0);
    return base.empty() ? 0.0
                        : sum / static_cast<double>(base.size());
}

} // namespace benchutil
} // namespace tempest

#endif // TEMPEST_BENCH_BENCH_UTIL_HH
