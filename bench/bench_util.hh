/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures: it runs the relevant simulations once per
 * (configuration, benchmark) pair, reports IPC and thermal
 * counters through google-benchmark, and prints the paper-style
 * rows (and suite averages) after the sweep.
 *
 * The sweeps execute up front on the parallel runner (one thread
 * per core by default), then the google-benchmark bodies read the
 * cached results; per-job seeds derive from (TEMPEST_SEED,
 * benchmark, config tag), so reported numbers are independent of
 * thread count and scheduling order.
 *
 * Environment knobs:
 * - TEMPEST_CYCLES: simulated cycles per run (default below)
 * - TEMPEST_BENCHMARKS: comma-separated benchmark subset
 * - TEMPEST_THREADS: parallel sweep width (default: all cores)
 * - TEMPEST_SEED: base seed for the per-run seed derivation
 * - TEMPEST_PROGRESS: set to print per-job completion lines
 */

#ifndef TEMPEST_BENCH_BENCH_UTIL_HH
#define TEMPEST_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace tempest
{
namespace benchutil
{

/** Cycles per simulation, overridable via TEMPEST_CYCLES. */
inline std::uint64_t
runCycles(std::uint64_t fallback = 8'000'000)
{
    if (const char* env = std::getenv("TEMPEST_CYCLES"))
        return static_cast<std::uint64_t>(std::atoll(env));
    return fallback;
}

/** Benchmark list, overridable via TEMPEST_BENCHMARKS. */
inline std::vector<std::string>
benchmarkList()
{
    if (const char* env = std::getenv("TEMPEST_BENCHMARKS")) {
        std::vector<std::string> out;
        std::stringstream ss(env);
        std::string item;
        while (std::getline(ss, item, ','))
            out.push_back(item);
        return out;
    }
    return spec2000Names();
}

/** Base seed for the per-run seed derivation. */
inline std::uint64_t
baseSeed()
{
    if (const char* env = std::getenv("TEMPEST_SEED"))
        return static_cast<std::uint64_t>(std::atoll(env));
    return 1;
}

/** Result cache so summary rows reuse the measured runs. */
class ResultTable
{
  public:
    /**
     * Cached result for (config_name, benchmark); on a miss, runs
     * the simulation serially with the same derived seed the
     * parallel prefetch would use, so the value is bit-identical
     * either way.
     */
    SimResult&
    run(const std::string& config_name, const SimConfig& config,
        const std::string& benchmark, std::uint64_t cycles)
    {
        const std::string key = config_name + "/" + benchmark;
        auto it = results_.find(key);
        if (it == results_.end()) {
            SimConfig seeded = config;
            seeded.runSeed = deriveRunSeed(baseSeed(), benchmark,
                                           config_name);
            it = results_
                     .emplace(key,
                              experiments::runBenchmark(
                                  seeded, benchmark, cycles))
                     .first;
        }
        return it->second;
    }

    /** Insert a precomputed result (parallel prefetch). */
    void
    put(const std::string& config_name,
        const std::string& benchmark, SimResult result)
    {
        results_.insert_or_assign(config_name + "/" + benchmark,
                                  std::move(result));
    }

    bool
    has(const std::string& config_name,
        const std::string& benchmark) const
    {
        return results_.count(config_name + "/" + benchmark) != 0;
    }

    const SimResult&
    get(const std::string& config_name,
        const std::string& benchmark) const
    {
        auto it = results_.find(config_name + "/" + benchmark);
        if (it == results_.end())
            fatal("missing result ", config_name, "/", benchmark);
        return it->second;
    }

  private:
    std::map<std::string, SimResult> results_;
};

/**
 * Run the whole (config x benchmark) sweep through the parallel
 * runner and fill the result cache. The sweep always runs to
 * completion; if any job failed, every failure is reported on
 * stderr and the process exits nonzero (a registered benchmark
 * body would otherwise crash on the missing cell).
 */
inline void
prefetch(ResultTable& table,
         const std::vector<std::pair<std::string, SimConfig>>&
             configs,
         const std::vector<std::string>& benchmarks,
         std::uint64_t cycles)
{
    ExperimentRunner::Options options;
    options.baseSeed = baseSeed();
    if (std::getenv("TEMPEST_PROGRESS")) {
        options.progress = [](const ExperimentOutcome& o,
                              std::size_t done,
                              std::size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %s/%s%s%s\n", done,
                         total, o.tag.c_str(),
                         o.benchmark.c_str(),
                         o.ok ? "" : " FAILED: ",
                         o.ok ? "" : o.error.c_str());
        };
    }
    std::vector<ExperimentOutcome> outcomes =
        experiments::runSweep(configs, benchmarks, cycles,
                              options);
    std::size_t failed = 0;
    for (ExperimentOutcome& o : outcomes) {
        if (o.ok) {
            table.put(o.tag, o.benchmark, std::move(o.result));
        } else {
            ++failed;
            std::fprintf(stderr, "sweep job %s/%s failed: %s\n",
                         o.tag.c_str(), o.benchmark.c_str(),
                         o.error.c_str());
        }
    }
    if (failed) {
        std::fprintf(stderr,
                     "prefetch: %zu of %zu sweep jobs failed\n",
                     failed, outcomes.size());
        std::exit(1);
    }
}

/** Attach the standard counters to a benchmark state. */
inline void
setCounters(benchmark::State& state, const SimResult& r)
{
    state.counters["ipc"] = r.ipc;
    state.counters["stall_frac"] =
        r.cycles ? static_cast<double>(r.stallCycles) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    state.counters["stalls"] =
        static_cast<double>(r.dtm.globalStalls);
}

/** Arithmetic-mean percent speedup over paired result sets. */
inline double
averageSpeedup(const std::vector<double>& base,
               const std::vector<double>& improved)
{
    double sum = 0;
    for (std::size_t i = 0; i < base.size(); ++i)
        sum += 100.0 * (improved[i] / base[i] - 1.0);
    return base.empty() ? 0.0
                        : sum / static_cast<double>(base.size());
}

} // namespace benchutil
} // namespace tempest

#endif // TEMPEST_BENCH_BENCH_UTIL_HH
