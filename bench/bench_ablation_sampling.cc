/**
 * @file
 * Ablation: sensitivity of the fine-grain turnoff experiment to
 * the sensor sampling interval (the paper samples every 100,000
 * cycles) and to the re-enable hysteresis.
 */

#include "bench_util.hh"

namespace
{

using namespace tempest;
using namespace tempest::experiments;

const std::uint64_t kIntervals[] = {12500, 25000, 50000, 100000,
                                    200000};
const double kHysteresis[] = {0.5, 1.5, 3.0, 6.0};

benchutil::ResultTable g_results;

std::uint64_t
cycles()
{
    return benchutil::runCycles();
}

SimConfig
intervalConfig(std::size_t i)
{
    SimConfig config = aluFineGrain();
    config.sampleIntervalCycles = kIntervals[i];
    return config;
}

SimConfig
hysteresisConfig(std::size_t i)
{
    SimConfig config = aluFineGrain();
    config.dtm.reenableHysteresisK = kHysteresis[i];
    return config;
}

std::string
tagFor(const char* name, std::size_t i)
{
    return name + std::string("#") + std::to_string(i);
}

void
BM_SampleInterval(benchmark::State& state)
{
    const auto i = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const SimResult& r =
            g_results.run(tagFor("interval", i),
                          intervalConfig(i), "perlbmk", cycles());
        benchutil::setCounters(state, r);
        state.counters["interval"] =
            static_cast<double>(kIntervals[i]);
        state.counters["max_alu0_K"] =
            r.block("IntExec0").max;
    }
}

void
BM_Hysteresis(benchmark::State& state)
{
    const auto i = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const SimResult& r = g_results.run(
            tagFor("hysteresis", i), hysteresisConfig(i),
            "perlbmk", cycles());
        benchutil::setCounters(state, r);
        state.counters["hysteresis_K"] = kHysteresis[i];
        state.counters["turnoffs"] =
            static_cast<double>(r.dtm.aluTurnoffEvents);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    tempest::setQuiet(true);
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (std::size_t i = 0; i < std::size(kIntervals); ++i) {
            configs.emplace_back(tagFor("interval", i),
                                 intervalConfig(i));
        }
        for (std::size_t i = 0; i < std::size(kHysteresis);
             ++i) {
            configs.emplace_back(tagFor("hysteresis", i),
                                 hysteresisConfig(i));
        }
        benchutil::prefetch(g_results, configs, {"perlbmk"},
                            cycles());
    }
    for (std::size_t i = 0; i < std::size(kIntervals); ++i) {
        benchmark::RegisterBenchmark("SampleInterval",
                                     BM_SampleInterval)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    for (std::size_t i = 0; i < std::size(kHysteresis); ++i) {
        benchmark::RegisterBenchmark("Hysteresis", BM_Hysteresis)
            ->Arg(static_cast<long>(i))
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
