#!/bin/bash
cd /root/repo
set -x
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
{
  for b in build/bench/bench_table4_iq_temps build/bench/bench_table5_alu_temps \
           build/bench/bench_table6_regfile_temps build/bench/bench_fig6_iq_ipc \
           build/bench/bench_fig7_alu_ipc build/bench/bench_fig8_regfile_ipc \
           build/bench/bench_ablation_toggle_threshold build/bench/bench_ablation_longwire \
           build/bench/bench_ablation_sampling build/bench/bench_micro_thermal \
           build/bench/bench_micro_issue_queue; do
    echo "===== $b ====="
    $b
    echo
  done
} 2>&1 | tee /root/repo/bench_output.txt
echo ALL_FINAL_RUNS_DONE
